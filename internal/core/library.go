package core

import (
	"errors"
	"fmt"

	"goalrec/internal/intset"
)

// Implementation is one goal implementation: a goal together with the set of
// actions whose joint execution fulfills it (Definition 3.1 of the paper).
// Actions is strictly increasing.
type Implementation struct {
	Goal    GoalID
	Actions []ActionID
}

// Errors returned by the library builder.
var (
	ErrEmptyActivity = errors.New("core: implementation with empty activity")
	ErrNegativeID    = errors.New("core: negative id")
)

// Builder accumulates goal implementations and freezes them into an
// immutable Library. The zero value is ready to use.
type Builder struct {
	implGoal   []GoalID
	implOff    []int32 // implOff[i]..implOff[i+1] delimit actions of impl i in implActs
	implActs   []ActionID
	maxAction  ActionID
	maxGoal    GoalID
	totalSlots int
}

// NewBuilder returns a Builder with capacity hints for n implementations of
// avgLen actions each.
func NewBuilder(n, avgLen int) *Builder {
	b := &Builder{
		implGoal: make([]GoalID, 0, n),
		implOff:  make([]int32, 1, n+1),
		implActs: make([]ActionID, 0, n*avgLen),
	}
	b.maxAction, b.maxGoal = -1, -1
	return b
}

func (b *Builder) init() {
	if len(b.implOff) == 0 {
		b.implOff = append(b.implOff, 0)
		b.maxAction, b.maxGoal = -1, -1
	}
}

// Add records the implementation (goal, actions). The action list may be
// unsorted and may contain duplicates; it is normalized. Add keeps its own
// copy of actions. It returns the id assigned to the implementation.
func (b *Builder) Add(goal GoalID, actions []ActionID) (ImplID, error) {
	b.init()
	if goal < 0 {
		return NoImpl, fmt.Errorf("%w: goal %d", ErrNegativeID, goal)
	}
	norm := intset.FromUnsorted(intset.Clone(actions))
	if len(norm) == 0 {
		return NoImpl, ErrEmptyActivity
	}
	if norm[0] < 0 {
		return NoImpl, fmt.Errorf("%w: action %d", ErrNegativeID, norm[0])
	}
	id := ImplID(len(b.implGoal))
	b.implGoal = append(b.implGoal, goal)
	b.implActs = append(b.implActs, norm...)
	b.implOff = append(b.implOff, int32(len(b.implActs)))
	if goal > b.maxGoal {
		b.maxGoal = goal
	}
	if last := norm[len(norm)-1]; last > b.maxAction {
		b.maxAction = last
	}
	b.totalSlots += len(norm)
	return id, nil
}

// Len returns the number of implementations added so far.
func (b *Builder) Len() int { return len(b.implGoal) }

// Build freezes the accumulated implementations into a Library. The Builder
// may keep accepting Adds afterwards; the built Library is unaffected.
func (b *Builder) Build() *Library {
	b.init()
	nAct := int(b.maxAction) + 1
	nGoal := int(b.maxGoal) + 1

	lib := &Library{
		implGoal:   append([]GoalID(nil), b.implGoal...),
		implOff:    append([]int32(nil), b.implOff...),
		implActs:   append([]ActionID(nil), b.implActs...),
		numActions: nAct,
		numGoals:   nGoal,
	}
	lib.buildIndexes()
	return lib
}

// buildIndexes derives the posting indexes (A-GI-idx, G-GI-idx and AG-idx)
// from the implementation CSR. It is called once per immutable Library, by
// Builder.Build and by the binary snapshot loader.
func (l *Library) buildIndexes() {
	nImpl := len(l.implGoal)
	nAct, nGoal := l.numActions, l.numGoals

	// Counting sort of (action, impl) pairs into the A-GI-idx postings and of
	// (goal, impl) pairs into G-GI-idx. Impl ids are appended in increasing
	// order, so each posting list comes out sorted.
	actCount := make([]int32, nAct+1)
	for _, a := range l.implActs {
		actCount[a+1]++
	}
	for i := 1; i <= nAct; i++ {
		actCount[i] += actCount[i-1]
	}
	l.actOff = actCount
	l.actPost = make([]ImplID, len(l.implActs))
	cursor := append([]int32(nil), actCount[:nAct]...)
	for p := 0; p < nImpl; p++ {
		for _, a := range l.implActions(ImplID(p)) {
			l.actPost[cursor[a]] = ImplID(p)
			cursor[a]++
		}
	}

	goalCount := make([]int32, nGoal+1)
	for _, g := range l.implGoal {
		goalCount[g+1]++
	}
	for i := 1; i <= nGoal; i++ {
		goalCount[i] += goalCount[i-1]
	}
	l.goalOff = goalCount
	l.goalPost = make([]ImplID, nImpl)
	gCursor := append([]int32(nil), goalCount[:nGoal]...)
	for p, g := range l.implGoal {
		l.goalPost[gCursor[g]] = ImplID(p)
		gCursor[g]++
	}

	// Per-goal slot totals: Σ |A_p| over the goal's implementations, the
	// exact cost of walking every implementation of the goal. The strategies
	// use these to choose between candidate-major and goal-major scoring.
	l.goalSlots = make([]int32, nGoal)
	for p, g := range l.implGoal {
		l.goalSlots[g] += l.implOff[p+1] - l.implOff[p]
	}

	// AG-idx: per-action sorted (goal, count) pairs, count = number of the
	// goal's implementations containing the action. Built in two linear
	// passes over the G-GI-idx: iterating goals in increasing id order means
	// each action's goal list comes out sorted with no per-action sort.
	// lastGoal[a] tracks the goal currently being appended for action a, so a
	// repeat occurrence within the same goal increments the count in place.
	lastGoal := make([]GoalID, nAct)
	for i := range lastGoal {
		lastGoal[i] = -1
	}
	agCount := make([]int32, nAct+1)
	for g := GoalID(0); int(g) < nGoal; g++ {
		for _, p := range l.goalPost[l.goalOff[g]:l.goalOff[g+1]] {
			for _, a := range l.implActions(p) {
				if lastGoal[a] != g {
					lastGoal[a] = g
					agCount[a+1]++
				}
			}
		}
	}
	for i := 1; i <= nAct; i++ {
		agCount[i] += agCount[i-1]
	}
	l.agOff = agCount
	l.agGoal = make([]GoalID, agCount[nAct])
	l.agCnt = make([]int32, agCount[nAct])
	agCursor := append([]int32(nil), agCount[:nAct]...)
	for i := range lastGoal {
		lastGoal[i] = -1
	}
	for g := GoalID(0); int(g) < nGoal; g++ {
		for _, p := range l.goalPost[l.goalOff[g]:l.goalOff[g+1]] {
			for _, a := range l.implActions(p) {
				if lastGoal[a] != g {
					lastGoal[a] = g
					l.agGoal[agCursor[a]] = g
					l.agCnt[agCursor[a]] = 1
					agCursor[a]++
				} else {
					l.agCnt[agCursor[a]-1]++
				}
			}
		}
	}

	// GA-idx: the transpose of the AG-idx — per-goal sorted (action, count)
	// pairs, count = number of the goal's implementations containing the
	// action. Iterating actions in increasing id order leaves every goal row
	// sorted with no per-goal sort. Goal-major scans read these contiguous
	// rows instead of dereferencing each implementation of the goal, so
	// their cost — and cache behavior — is independent of how implementation
	// ids are laid out (impact ordering scatters a goal's implementations
	// across the id space).
	gaCount := make([]int32, nGoal+1)
	for _, g := range l.agGoal {
		gaCount[g+1]++
	}
	for i := 1; i <= nGoal; i++ {
		gaCount[i] += gaCount[i-1]
	}
	l.gaOff = gaCount
	l.gaAct = make([]ActionID, gaCount[nGoal])
	l.gaCnt = make([]int32, gaCount[nGoal])
	gaCursor := append([]int32(nil), gaCount[:nGoal]...)
	for a := 0; a < nAct; a++ {
		for i := l.agOff[a]; i < l.agOff[a+1]; i++ {
			g := l.agGoal[i]
			l.gaAct[gaCursor[g]] = ActionID(a)
			l.gaCnt[gaCursor[g]] = l.agCnt[i]
			gaCursor[g]++
		}
	}

	l.buildBlocks()
}

// Library is the immutable association-based goal model (Figure 2 of the
// paper): every implementation is a labelled hyperedge over actions, stored
// in CSR form together with the three posting indexes
//
//	A-GI-idx: action -> implementations containing it
//	G-GI-idx: goal   -> implementations fulfilling it
//	AG-idx:   action -> distinct (goal, multiplicity) pairs
//
// A Library is safe for concurrent readers.
//
// Libraries come in two internal shapes. A *flat* library (Builder.Build,
// the codecs) stores every index as packed CSR arrays. An *extended* library
// (a DynamicLibrary snapshot) shares the flat CSR arrays of an earlier epoch
// and overlays fresh rows for only the actions and goals the appended
// implementations touched; untouched rows keep serving from the shared
// prefix, which is what makes snapshotting an append sub-linear in library
// size. All accessors resolve the overlay transparently, so the two shapes
// are observationally identical.
type Library struct {
	implGoal []GoalID   // GI-G-idx: implementation -> goal
	implOff  []int32    // CSR offsets into implActs (GI-A-idx)
	implActs []ActionID // concatenated, per-impl sorted action lists

	actOff  []int32  // CSR offsets into actPost, len numActions+1
	actPost []ImplID // A-GI-idx postings, sorted per action; nil when compressed

	// cp, non-nil only on snapshot-loaded libraries with block-compressed
	// postings, replaces actPost with a delta-varint blob decoded per block
	// (see postings.go). actOff still carries the row lengths.
	cp *compressedPostings

	goalOff  []int32  // CSR offsets into goalPost, len numGoals+1
	goalPost []ImplID // G-GI-idx postings, sorted per goal

	// AG-idx: per-action sorted distinct goal lists with multiplicities.
	// agCnt[i] is the number of implementations of goal agGoal[i] containing
	// the action. Collapses the per-implementation postings for consumers
	// that only need goal totals (profiles, goal spaces), turning O(|IS(a)|)
	// walks with random GI-G lookups into shorter sequential scans.
	agOff  []int32  // CSR offsets into agGoal/agCnt, len numActions+1
	agGoal []GoalID // sorted per action
	agCnt  []int32  // parallel multiplicities, all ≥ 1

	// GA-idx (transpose of AG-idx): per-goal sorted distinct actions with
	// the same multiplicities, in CSR form.
	gaOff []int32 // CSR offsets into gaAct/gaCnt, len numGoals+1
	gaAct []ActionID
	gaCnt []int32

	goalSlots []int32 // per-goal Σ |A_p|, the walk cost of the goal's impls

	// Block-max metadata over the A-GI postings (see blocks.go): per-row
	// fixed-size block summaries in CSR form, aligned with actOff/actPost.
	blkOff    []int32  // CSR offsets into the blk arrays, len numActions+1
	blkLast   []ImplID // last implementation id per block
	blkMinLen []int32  // min |A_p| per block
	blkMaxLen []int32  // max |A_p| per block

	maxImplLen    int32     // largest |A_p| in the library
	implLenSorted bool      // |A_p| non-decreasing in id (impact-ordered layout)
	bounds        *boundAux // lazily derived suffix bounds, shared by copies

	// Copy-on-write overlays, non-nil only on extended snapshots: merged
	// rows for the actions/goals touched since the last flat index build.
	// The CSR arrays above then belong to the base epoch and cover only ids
	// below their own lengths; every accessor consults the overlay first.
	ovActPost   map[ActionID][]ImplID
	ovGoalPost  map[GoalID][]ImplID
	ovAgGoal    map[ActionID][]GoalID
	ovAgCnt     map[ActionID][]int32
	ovGaAct     map[GoalID][]ActionID
	ovGaCnt     map[GoalID][]int32
	ovGoalSlots map[GoalID]int32
	ovBlocks    map[ActionID]PostingBlocks

	numActions int
	numGoals   int

	// epoch numbers the snapshot within a DynamicLibrary or Engine lineage;
	// libraries built directly (Builder.Build, the codecs) are epoch 0.
	epoch uint64
}

// Epoch returns the snapshot's epoch number. Snapshots taken from one
// DynamicLibrary (or Engine) carry strictly increasing epochs; directly
// built libraries are epoch 0.
func (l *Library) Epoch() uint64 { return l.epoch }

// withEpoch returns a shallow copy of l stamped with epoch e, used when an
// externally built library is swapped into a DynamicLibrary lineage.
func (l *Library) withEpoch(e uint64) *Library {
	c := *l
	c.epoch = e
	return &c
}

// NumImplementations returns |L|.
func (l *Library) NumImplementations() int { return len(l.implGoal) }

// NumActions returns the size of the action id space (max id + 1).
func (l *Library) NumActions() int { return l.numActions }

// NumGoals returns the size of the goal id space (max id + 1).
func (l *Library) NumGoals() int { return l.numGoals }

// Goal returns the goal the implementation p fulfills (GI-G-idx lookup).
// It panics if p is out of range.
func (l *Library) Goal(p ImplID) GoalID { return l.implGoal[p] }

// Actions returns the sorted action set of implementation p (GI-A-idx
// lookup). The returned slice is a view into the library and must not be
// modified. It panics if p is out of range.
func (l *Library) Actions(p ImplID) []ActionID {
	return l.implActions(p)
}

func (l *Library) implActions(p ImplID) []ActionID {
	return l.implActs[l.implOff[p]:l.implOff[p+1]]
}

// ImplLen returns |A_p| without materializing the action view.
func (l *Library) ImplLen(p ImplID) int {
	return int(l.implOff[p+1] - l.implOff[p])
}

// NumPostings returns the total posting count Σ_p |A_p| — the A-GI-idx
// size, used by cost models choosing between scan directions.
func (l *Library) NumPostings() int { return len(l.implActs) }

// ImplsOfAction returns the sorted implementation ids containing action a
// (A-GI-idx lookup); this is the implementation space IS(a) of the paper.
// The returned slice is a view and must not be modified — except over
// block-compressed postings, where the row is decoded into a fresh slice.
// Hot paths should prefer PostingRow/PostingRowRange/PostingRowCursor, which
// reuse caller buffers and decode lazily. Ids outside the library yield an
// empty slice.
func (l *Library) ImplsOfAction(a ActionID) []ImplID {
	row, ok := l.rawRow(a)
	if ok {
		return row
	}
	return l.decodeRowAppend(a, nil)
}

// ImplsOfGoal returns the sorted implementation ids fulfilling goal g
// (G-GI-idx lookup). The returned slice is a view and must not be modified.
// Ids outside the library yield an empty slice.
func (l *Library) ImplsOfGoal(g GoalID) []ImplID {
	if g < 0 || int(g) >= l.numGoals {
		return nil
	}
	if l.ovGoalPost != nil {
		if row, ok := l.ovGoalPost[g]; ok {
			return row
		}
	}
	if int(g)+1 >= len(l.goalOff) {
		return nil
	}
	return l.goalPost[l.goalOff[g]:l.goalOff[g+1]]
}

// ActionDegree returns the connectivity of one action: the number of
// implementations it participates in. It reads the CSR offsets, so it is
// O(1) even over block-compressed postings.
func (l *Library) ActionDegree(a ActionID) int {
	if a < 0 || int(a) >= l.numActions {
		return 0
	}
	if l.ovActPost != nil {
		if row, ok := l.ovActPost[a]; ok {
			return len(row)
		}
	}
	if int(a)+1 >= len(l.actOff) {
		return 0
	}
	return int(l.actOff[a+1] - l.actOff[a])
}

// GoalsOfAction returns the AG-idx row of action a: the sorted distinct
// goals whose implementations contain a, with the per-goal multiplicity
// (how many of the goal's implementations contain a). Both slices are views
// into the library and must not be modified. Ids outside the library yield
// empty slices.
func (l *Library) GoalsOfAction(a ActionID) ([]GoalID, []int32) {
	if a < 0 || int(a) >= l.numActions {
		return nil, nil
	}
	if l.ovAgGoal != nil {
		if row, ok := l.ovAgGoal[a]; ok {
			return row, l.ovAgCnt[a]
		}
	}
	if int(a)+1 >= len(l.agOff) {
		return nil, nil
	}
	lo, hi := l.agOff[a], l.agOff[a+1]
	return l.agGoal[lo:hi], l.agCnt[lo:hi]
}

// ActionsOfGoal returns the GA-idx row of goal g: the sorted distinct
// actions appearing in the goal's implementations, with the per-action
// multiplicity (how many of the goal's implementations contain the action).
// It is the transpose view of GoalsOfAction. Both slices are views into the
// library and must not be modified. Ids outside the library yield empty
// slices.
func (l *Library) ActionsOfGoal(g GoalID) ([]ActionID, []int32) {
	if g < 0 || int(g) >= l.numGoals {
		return nil, nil
	}
	if l.ovGaAct != nil {
		if row, ok := l.ovGaAct[g]; ok {
			return row, l.ovGaCnt[g]
		}
	}
	if int(g)+1 >= len(l.gaOff) {
		return nil, nil
	}
	lo, hi := l.gaOff[g], l.gaOff[g+1]
	return l.gaAct[lo:hi], l.gaCnt[lo:hi]
}

// GoalActionCount returns the number of distinct actions of goal g: the
// GA-idx row length, the exact cost of a goal-major visit of the goal.
func (l *Library) GoalActionCount(g GoalID) int {
	acts, _ := l.ActionsOfGoal(g)
	return len(acts)
}

// GoalDegree returns the number of distinct goals action a contributes to:
// the AG-idx row length, the quantity that bounds the per-candidate scoring
// cost of Best Match.
func (l *Library) GoalDegree(a ActionID) int {
	goals, _ := l.GoalsOfAction(a)
	return len(goals)
}

// ActionGoalCount returns the number of implementations of goal g that
// contain action a, by binary search in a's AG-idx row. It is the count
// Explain and TopGoals previously derived by walking the full A-GI posting
// list of a.
func (l *Library) ActionGoalCount(a ActionID, g GoalID) int {
	goals, counts := l.GoalsOfAction(a)
	lo, hi := 0, len(goals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if goals[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(goals) && goals[lo] == g {
		return int(counts[lo])
	}
	return 0
}

// GoalWalkCost returns Σ |A_p| over the implementations of goal g: the exact
// cost of visiting every slot of the goal. Ids outside the library yield 0.
func (l *Library) GoalWalkCost(g GoalID) int {
	if g < 0 || int(g) >= l.numGoals {
		return 0
	}
	if l.ovGoalSlots != nil {
		if v, ok := l.ovGoalSlots[g]; ok {
			return int(v)
		}
	}
	if int(g) >= len(l.goalSlots) {
		return 0
	}
	return int(l.goalSlots[g])
}

// Implementation materializes implementation p as a value with its own
// action slice copy.
func (l *Library) Implementation(p ImplID) Implementation {
	return Implementation{Goal: l.Goal(p), Actions: intset.Clone(l.implActions(p))}
}
