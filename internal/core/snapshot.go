package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"unsafe"

	"goalrec/internal/faultfs"
)

// The zero-copy snapshot format (see DESIGN.md, "Snapshot format & WAL"): a
// 64-byte little-endian header, a CRC-guarded section table, and one
// 64-byte-aligned section per index array. Every CSR section — implementation
// rows, A-GI-idx, G-GI-idx, AG-idx, GA-idx, goal slots, and the block-max
// metadata — is a fixed-width little-endian array, so OpenSnapshot serves
// them as unsafe.Slice views straight over the mapping: cold start is header
// parsing plus page-in, independent of library size. The A-GI postings may
// additionally be stored delta-varint block-compressed (postenc.go), in
// which case actPost is replaced by a blob + per-block byte offsets and rows
// decode lazily, block by block, on first use.
//
// Unlike WriteBinary/ReadBinary (codec.go), which persist only the
// implementation CSR and rebuild every index on load, a snapshot persists all
// derived indexes. Scalar derivations (maxImplLen, implLenSorted, epoch) live
// in the header so opening never scans a section.

const (
	snapshotMagic   = uint32(0x504e5347) // "GSNP" when read little-endian
	snapshotVersion = uint32(1)

	// snapAlign is the byte alignment of every section, generous enough for
	// any element type and cache-line friendly.
	snapAlign = 64

	// snapHeaderSize is the fixed header length; the section table follows.
	snapHeaderSize = 64
	snapSectSize   = 24 // bytes per section-table entry

	// snapMaxSections bounds the table a corrupt header can demand.
	snapMaxSections = 64

	// snapMaxName bounds one vocabulary name, mirroring the named codec.
	snapMaxName = 1 << 16

	// snapFooterMagic introduces the optional 8-byte whole-file checksum
	// footer ("GSUM" read little-endian) appended after the last section:
	// magic | u32 crc32(everything before the footer). The open path never
	// reads it — opening stays O(header) — but the scrubber uses it to
	// detect silent at-rest corruption anywhere in the file, which the
	// header CRC (header + section table only) cannot see.
	snapFooterMagic = uint32(0x4d555347)
	snapFooterSize  = 8
)

// Header flag bits.
const (
	snapFlagCompressed = 1 << 0 // A-GI postings are block-compressed
	snapFlagVocab      = 1 << 1 // vocabulary sections present
	snapFlagLenSorted  = 1 << 2 // |A_p| non-decreasing in id
)

// Section identifiers. Element widths are fixed per section.
const (
	secImplGoal   = 1 + iota // int32 × nImpl
	secImplOff               // int32 × nImpl+1
	secImplActs              // int32 × nSlots
	secActOff                // int32 × nAct+1
	secActPost               // int32 × nSlots (uncompressed postings only)
	secGoalOff               // int32 × nGoal+1
	secGoalPost              // int32 × nImpl
	secAgOff                 // int32 × nAct+1
	secAgGoal                // int32 × nAG
	secAgCnt                 // int32 × nAG
	secGaOff                 // int32 × nGoal+1
	secGaAct                 // int32 × nGA
	secGaCnt                 // int32 × nGA
	secGoalSlots             // int32 × nGoal
	secBlkOff                // int32 × nAct+1
	secBlkLast               // int32 × nBlk
	secBlkMinLen             // int32 × nBlk
	secBlkMaxLen             // int32 × nBlk
	secPostOff               // uint64 × nBlk+1 (compressed postings only)
	secPostBlob              // byte × blob len (compressed postings only)
	secVocActOff             // uint64 × nActNames+1
	secVocActStr             // byte × action-name blob
	secVocGoalOff            // uint64 × nGoalNames+1
	secVocGoalStr            // byte × goal-name blob
)

// hostLittleEndian reports the byte order of this process; on the (rare)
// big-endian host the zero-copy views degrade to decoded copies.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// i32View reinterprets b as n little-endian 32-bit values. On little-endian
// hosts this is a zero-copy cast (b must be 4-byte aligned); otherwise the
// values are decoded into a fresh slice.
func i32View[T ~int32](b []byte, n int) []T {
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(int32(binary.LittleEndian.Uint32(b[4*i:])))
	}
	return out
}

// u64View is i32View's 64-bit counterpart.
func u64View(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// i32Bytes is the write-side inverse of i32View on little-endian hosts.
func i32Bytes[T ~int32](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

// SnapshotOptions configures WriteSnapshot.
type SnapshotOptions struct {
	// CompressPostings stores the A-GI posting rows delta-varint
	// block-compressed instead of as a raw id array. Rows then decode
	// lazily per block at query time; rankings are unaffected.
	CompressPostings bool
}

// snapWriter tracks the byte offset of a buffered stream and pads sections
// to the format alignment.
type snapWriter struct {
	w   *bufio.Writer
	off uint64
	crc uint32 // running crc32 of every byte written, for the footer
	err error
}

func (sw *snapWriter) write(b []byte) {
	if sw.err != nil {
		return
	}
	n, err := sw.w.Write(b)
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, b[:n])
	sw.off += uint64(n)
	sw.err = err
}

func (sw *snapWriter) writeI32s(s []int32) { writeI32Slice(sw, s) }

func writeI32Slice[T ~int32](sw *snapWriter, s []T) {
	if hostLittleEndian {
		sw.write(i32Bytes(s))
		return
	}
	var buf [4]byte
	for _, v := range s {
		binary.LittleEndian.PutUint32(buf[:], uint32(int32(v)))
		sw.write(buf[:])
	}
}

func (sw *snapWriter) writeU64s(s []uint64) {
	if hostLittleEndian && len(s) > 0 {
		sw.write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s)))
		return
	}
	var buf [8]byte
	for _, v := range s {
		binary.LittleEndian.PutUint64(buf[:], v)
		sw.write(buf[:])
	}
}

// padTo advances the stream to absolute offset target with zero bytes.
func (sw *snapWriter) padTo(target uint64) {
	var zeros [snapAlign]byte
	for sw.err == nil && sw.off < target {
		n := target - sw.off
		if n > snapAlign {
			n = snapAlign
		}
		sw.write(zeros[:n])
	}
}

func alignUp(off uint64) uint64 {
	return (off + snapAlign - 1) &^ uint64(snapAlign-1)
}

// snapSection is one planned section: identity, geometry and a payload
// writer. Offsets are assigned by the planner before anything is emitted.
type snapSection struct {
	id    uint32
	elem  uint32
	count uint64
	off   uint64
	emit  func(sw *snapWriter)
}

// packNames flattens a name list into (cumulative byte offsets, blob).
func packNames(names []string) ([]uint64, []byte) {
	off := make([]uint64, 1, len(names)+1)
	var blob []byte
	for _, s := range names {
		blob = append(blob, s...)
		off = append(off, uint64(len(blob)))
	}
	return off, blob
}

// snapPlan is one snapshot's section plan — the ordered sections plus the
// header dimensions — shared by the full-snapshot writer (WriteSnapshot) and
// the delta writer (WriteSnapshotDiff) so both serialize the exact same
// canonical payload bytes.
type snapPlan struct {
	secs       []snapSection
	flags      uint32
	nImpl      int
	nAct       int
	nGoal      int
	nSlots     int
	epoch      uint64
	maxImplLen int
}

// headerBytes renders the fixed 64-byte header for the given container
// version, leaving the trailing CRC field zero for the caller to stamp.
func (p *snapPlan) headerBytes(version uint32) []byte {
	hdr := make([]byte, snapHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], p.flags)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.secs)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(p.nImpl))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(p.nAct))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(p.nGoal))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(p.nSlots))
	binary.LittleEndian.PutUint64(hdr[48:], p.epoch)
	binary.LittleEndian.PutUint32(hdr[56:], uint32(p.maxImplLen))
	return hdr
}

// planSnapshot derives the flat section plan of l (and optionally its
// vocabulary). Every index row is read through the accessor surface, so
// flat, extended (overlay) and snapshot-loaded libraries all plan the same
// canonical flat layout — which is also what lets WAL compaction rewrite a
// live mmap-backed library without flattening it in memory first.
func planSnapshot(l *Library, vocab *Vocabulary, opts SnapshotOptions) (*snapPlan, error) {
	nImpl := l.NumImplementations()
	nAct, nGoal := l.numActions, l.numGoals
	nSlots := len(l.implActs)

	// Derived flat offsets. ActionDegree/GoalDegree/... resolve overlays, so
	// these are the offsets a flat rebuild would produce.
	actOff := make([]int32, nAct+1)
	blkOff := make([]int32, nAct+1)
	nAG := uint64(0)
	for a := 0; a < nAct; a++ {
		d := l.ActionDegree(ActionID(a))
		actOff[a+1] = actOff[a] + int32(d)
		blkOff[a+1] = blkOff[a] + int32((d+PostingBlockEntries-1)/PostingBlockEntries)
		nAG += uint64(l.GoalDegree(ActionID(a)))
	}
	if int(actOff[nAct]) != nSlots {
		return nil, fmt.Errorf("core: inconsistent library: %d postings for %d slots", actOff[nAct], nSlots)
	}
	nBlk := uint64(blkOff[nAct])
	goalOff := make([]int32, nGoal+1)
	gaOff := make([]int32, nGoal+1)
	goalSlots := make([]int32, nGoal)
	nGA := uint64(0)
	for g := 0; g < nGoal; g++ {
		goalOff[g+1] = goalOff[g] + int32(len(l.ImplsOfGoal(GoalID(g))))
		gaOff[g+1] = gaOff[g] + int32(l.GoalActionCount(GoalID(g)))
		goalSlots[g] = int32(l.GoalWalkCost(GoalID(g)))
		nGA += uint64(l.GoalActionCount(GoalID(g)))
	}
	if int(goalOff[nGoal]) != nImpl {
		return nil, fmt.Errorf("core: inconsistent library: %d goal postings for %d implementations", goalOff[nGoal], nImpl)
	}

	flags := uint32(0)
	if l.implLenSorted {
		flags |= snapFlagLenSorted
	}

	// Compressed postings pre-pass: the blob must be materialized to size the
	// section table. rowBuf keeps the pass allocation-bounded.
	var blob []byte
	var blobOff []uint64
	if opts.CompressPostings {
		flags |= snapFlagCompressed
		blobOff = append(make([]uint64, 0, nBlk+1), 0)
		var rowBuf []ImplID
		for a := 0; a < nAct; a++ {
			var row []ImplID
			row, rowBuf = l.PostingRow(ActionID(a), rowBuf)
			prev := ImplID(-1)
			for lo := 0; lo < len(row); lo += PostingBlockEntries {
				hi := lo + PostingBlockEntries
				if hi > len(row) {
					hi = len(row)
				}
				blob = appendBlockEncoded(blob, prev, row[lo:hi])
				blobOff = append(blobOff, uint64(len(blob)))
				prev = row[hi-1]
			}
		}
	}

	var actNameOff, goalNameOff []uint64
	var actNameBlob, goalNameBlob []byte
	if vocab != nil {
		flags |= snapFlagVocab
		actNameOff, actNameBlob = packNames(vocab.Actions.Names())
		goalNameOff, goalNameBlob = packNames(vocab.Goals.Names())
	}

	// emitRows streams every A-GI posting row (the raw actPost section).
	emitRows := func(sw *snapWriter) {
		var rowBuf []ImplID
		for a := 0; a < nAct && sw.err == nil; a++ {
			var row []ImplID
			row, rowBuf = l.PostingRow(ActionID(a), rowBuf)
			writeI32Slice(sw, row)
		}
	}
	// emitBlocks streams one of the three block-metadata arrays, derived per
	// row so overlay rows serialize their own merged metadata.
	emitBlocks := func(pick func(PostingBlocks) []int32, fromLast bool) func(sw *snapWriter) {
		return func(sw *snapWriter) {
			var scratchLast []ImplID
			var scratchMin, scratchMax []int32
			for a := 0; a < nAct && sw.err == nil; a++ {
				blk := l.ActionPostingBlocks(ActionID(a))
				want := int(blkOff[a+1] - blkOff[a])
				if blk.NumBlocks() != want {
					// Hand-assembled libraries may lack block metadata;
					// derive it from the row.
					row := l.ImplsOfAction(ActionID(a))
					scratchLast, scratchMin, scratchMax = l.appendRowBlocks(row, scratchLast[:0], scratchMin[:0], scratchMax[:0])
					blk = PostingBlocks{Last: scratchLast, MinLen: scratchMin, MaxLen: scratchMax}
				}
				if fromLast {
					writeI32Slice(sw, blk.Last)
				} else {
					writeI32Slice(sw, pick(blk))
				}
			}
		}
	}

	secs := []snapSection{
		{id: secImplGoal, elem: 4, count: uint64(nImpl), emit: func(sw *snapWriter) { writeI32Slice(sw, l.implGoal) }},
		{id: secImplOff, elem: 4, count: uint64(nImpl + 1), emit: func(sw *snapWriter) { sw.writeI32s(l.implOff) }},
		{id: secImplActs, elem: 4, count: uint64(nSlots), emit: func(sw *snapWriter) { writeI32Slice(sw, l.implActs) }},
		{id: secActOff, elem: 4, count: uint64(nAct + 1), emit: func(sw *snapWriter) { sw.writeI32s(actOff) }},
	}
	if !opts.CompressPostings {
		secs = append(secs, snapSection{id: secActPost, elem: 4, count: uint64(nSlots), emit: emitRows})
	}
	secs = append(secs,
		snapSection{id: secGoalOff, elem: 4, count: uint64(nGoal + 1), emit: func(sw *snapWriter) { sw.writeI32s(goalOff) }},
		snapSection{id: secGoalPost, elem: 4, count: uint64(nImpl), emit: func(sw *snapWriter) {
			for g := 0; g < nGoal && sw.err == nil; g++ {
				writeI32Slice(sw, l.ImplsOfGoal(GoalID(g)))
			}
		}},
		snapSection{id: secAgOff, elem: 4, count: uint64(nAct + 1), emit: func(sw *snapWriter) {
			off := int32(0)
			agOff := make([]int32, 1, nAct+1)
			for a := 0; a < nAct; a++ {
				off += int32(l.GoalDegree(ActionID(a)))
				agOff = append(agOff, off)
			}
			sw.writeI32s(agOff)
		}},
		snapSection{id: secAgGoal, elem: 4, count: nAG, emit: func(sw *snapWriter) {
			for a := 0; a < nAct && sw.err == nil; a++ {
				goals, _ := l.GoalsOfAction(ActionID(a))
				writeI32Slice(sw, goals)
			}
		}},
		snapSection{id: secAgCnt, elem: 4, count: nAG, emit: func(sw *snapWriter) {
			for a := 0; a < nAct && sw.err == nil; a++ {
				_, cnts := l.GoalsOfAction(ActionID(a))
				sw.writeI32s(cnts)
			}
		}},
		snapSection{id: secGaOff, elem: 4, count: uint64(nGoal + 1), emit: func(sw *snapWriter) { sw.writeI32s(gaOff) }},
		snapSection{id: secGaAct, elem: 4, count: nGA, emit: func(sw *snapWriter) {
			for g := 0; g < nGoal && sw.err == nil; g++ {
				acts, _ := l.ActionsOfGoal(GoalID(g))
				writeI32Slice(sw, acts)
			}
		}},
		snapSection{id: secGaCnt, elem: 4, count: nGA, emit: func(sw *snapWriter) {
			for g := 0; g < nGoal && sw.err == nil; g++ {
				_, cnts := l.ActionsOfGoal(GoalID(g))
				sw.writeI32s(cnts)
			}
		}},
		snapSection{id: secGoalSlots, elem: 4, count: uint64(nGoal), emit: func(sw *snapWriter) { sw.writeI32s(goalSlots) }},
		snapSection{id: secBlkOff, elem: 4, count: uint64(nAct + 1), emit: func(sw *snapWriter) { sw.writeI32s(blkOff) }},
		snapSection{id: secBlkLast, elem: 4, count: nBlk, emit: emitBlocks(nil, true)},
		snapSection{id: secBlkMinLen, elem: 4, count: nBlk, emit: emitBlocks(func(b PostingBlocks) []int32 { return b.MinLen }, false)},
		snapSection{id: secBlkMaxLen, elem: 4, count: nBlk, emit: emitBlocks(func(b PostingBlocks) []int32 { return b.MaxLen }, false)},
	)
	if opts.CompressPostings {
		secs = append(secs,
			snapSection{id: secPostOff, elem: 8, count: uint64(len(blobOff)), emit: func(sw *snapWriter) { sw.writeU64s(blobOff) }},
			snapSection{id: secPostBlob, elem: 1, count: uint64(len(blob)), emit: func(sw *snapWriter) { sw.write(blob) }},
		)
	}
	if vocab != nil {
		secs = append(secs,
			snapSection{id: secVocActOff, elem: 8, count: uint64(len(actNameOff)), emit: func(sw *snapWriter) { sw.writeU64s(actNameOff) }},
			snapSection{id: secVocActStr, elem: 1, count: uint64(len(actNameBlob)), emit: func(sw *snapWriter) { sw.write(actNameBlob) }},
			snapSection{id: secVocGoalOff, elem: 8, count: uint64(len(goalNameOff)), emit: func(sw *snapWriter) { sw.writeU64s(goalNameOff) }},
			snapSection{id: secVocGoalStr, elem: 1, count: uint64(len(goalNameBlob)), emit: func(sw *snapWriter) { sw.write(goalNameBlob) }},
		)
	}
	return &snapPlan{
		secs: secs, flags: flags,
		nImpl: nImpl, nAct: nAct, nGoal: nGoal, nSlots: nSlots,
		epoch: l.epoch, maxImplLen: int(l.maxImplLen),
	}, nil
}

// WriteSnapshot writes l (and optionally its vocabulary) to w in the
// zero-copy snapshot format.
func WriteSnapshot(w io.Writer, l *Library, vocab *Vocabulary, opts SnapshotOptions) error {
	p, err := planSnapshot(l, vocab, opts)
	if err != nil {
		return err
	}
	secs := p.secs

	// Assign aligned offsets.
	off := alignUp(uint64(snapHeaderSize + snapSectSize*len(secs)))
	for i := range secs {
		secs[i].off = off
		off = alignUp(off + secs[i].count*uint64(secs[i].elem))
	}

	// Header + table, CRC-stamped.
	hdr := p.headerBytes(snapshotVersion)
	table := make([]byte, snapSectSize*len(secs))
	for i, s := range secs {
		e := table[snapSectSize*i:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], s.elem)
		binary.LittleEndian.PutUint64(e[8:], s.off)
		binary.LittleEndian.PutUint64(e[16:], s.count)
	}
	crc := crc32.ChecksumIEEE(hdr[:60])
	crc = crc32.Update(crc, crc32.IEEETable, table)
	binary.LittleEndian.PutUint32(hdr[60:], crc)

	sw := &snapWriter{w: bufio.NewWriterSize(w, 1<<16)}
	sw.write(hdr)
	sw.write(table)
	for i := range secs {
		sw.padTo(secs[i].off)
		secs[i].emit(sw)
		if want := secs[i].off + secs[i].count*uint64(secs[i].elem); sw.err == nil && sw.off != want {
			return fmt.Errorf("core: snapshot section %d wrote %d bytes, want %d", secs[i].id, sw.off-secs[i].off, want-secs[i].off)
		}
	}
	// Whole-file checksum footer: everything written so far, sealed.
	var footer [snapFooterSize]byte
	binary.LittleEndian.PutUint32(footer[0:], snapFooterMagic)
	binary.LittleEndian.PutUint32(footer[4:], sw.crc)
	sw.write(footer[:])
	if sw.err != nil {
		return fmt.Errorf("core: writing snapshot: %w", sw.err)
	}
	return sw.w.Flush()
}

// VerifySnapshotChecksum checks the whole-file checksum footer of a snapshot
// image: every byte of the file, not just the header, must match the CRC the
// writer sealed it with. It returns ErrNoChecksum for a (pre-footer) image
// without one — the caller then falls back to structural verification.
func VerifySnapshotChecksum(data []byte) error {
	var end uint64
	if IsSnapshotDelta(data) {
		dsecs, _, _, err := parseDelta(data)
		if err != nil {
			return err
		}
		end = uint64(snapHeaderSize + snapDeltaPreSize + snapDeltaSectSize*len(dsecs))
		for _, d := range dsecs {
			if e := d.off + d.inlineLen(); e > end {
				end = e
			}
		}
	} else {
		secs, _, err := snapshotSections(data)
		if err != nil {
			return err
		}
		for _, s := range secs {
			if e := s.off + s.count*uint64(s.elem); e > end {
				end = e
			}
		}
	}
	if end+snapFooterSize > uint64(len(data)) {
		return ErrNoChecksum
	}
	footer := data[end : end+snapFooterSize]
	if binary.LittleEndian.Uint32(footer[0:]) != snapFooterMagic {
		return ErrNoChecksum
	}
	want := binary.LittleEndian.Uint32(footer[4:])
	if got := crc32.ChecksumIEEE(data[:end]); got != want {
		return fmt.Errorf("core: snapshot checksum mismatch (%#x != %#x)", got, want)
	}
	return nil
}

// ErrNoChecksum reports a snapshot written before the whole-file checksum
// footer existed; its integrity can still be checked structurally with
// VerifySnapshot.
var ErrNoChecksum = fmt.Errorf("core: snapshot has no checksum footer")

// ErrCorruptSnapshot wraps every verification failure ScrubSnapshotFile
// reports — proof that the bytes at rest are not what the writer sealed.
// I/O errors reading the file are returned bare: they prove nothing about
// the data and must not trigger quarantine.
var ErrCorruptSnapshot = fmt.Errorf("core: snapshot corrupt")

// ScrubSnapshotFile re-reads the snapshot at path in full and verifies its
// whole-file checksum footer; a legacy image without one is verified
// structurally instead (deep CSR invariants). A nil return means every byte
// of the file is what the writer sealed; a verification failure comes back
// wrapping ErrCorruptSnapshot, anything else is an I/O error. This is the
// scrubber's primitive — deliberately a fresh read, not a check of an
// already-open mapping, so it catches at-rest corruption the page cache
// would hide.
func ScrubSnapshotFile(fsys faultfs.FS, path string) error {
	fsys = faultfs.Or(fsys)
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	data, rerr := io.ReadAll(f)
	cerr := f.Close()
	if rerr != nil {
		return rerr
	}
	if cerr != nil {
		return cerr
	}
	err = VerifySnapshotChecksum(data)
	if err == ErrNoChecksum {
		s, oerr := OpenSnapshotBytes(data)
		if oerr != nil {
			return fmt.Errorf("%w: %w", ErrCorruptSnapshot, oerr)
		}
		err = VerifySnapshot(s)
	}
	if err != nil {
		return fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
	}
	return nil
}

// WriteSnapshotFile writes the snapshot to path atomically: a same-directory
// temp file is written, synced, renamed into place, and the directory is
// fsynced so the rename itself survives power loss.
func WriteSnapshotFile(path string, l *Library, vocab *Vocabulary, opts SnapshotOptions) (err error) {
	return WriteSnapshotFileFS(faultfs.OS, path, l, vocab, opts)
}

// WriteSnapshotFileFS is WriteSnapshotFile over an explicit filesystem
// (fault injection; see internal/faultfs).
func WriteSnapshotFileFS(fsys faultfs.FS, path string, l *Library, vocab *Vocabulary, opts SnapshotOptions) (err error) {
	dir := filepathDir(path)
	f, err := fsys.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = fsys.Remove(tmp)
		}
	}()
	if err = WriteSnapshot(f, l, vocab, opts); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// filepathDir is filepath.Dir without importing path/filepath for one call.
func filepathDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			if i == 0 {
				return path[:1]
			}
			return path[:i]
		}
	}
	return "."
}

// Snapshot is an open snapshot file: a Library (and optional Vocabulary)
// whose index arrays are zero-copy views over the underlying mapping. The
// mapping must outlive every use of the Library; Close releases it.
type Snapshot struct {
	lib   *Library
	vocab *Vocabulary
	data  []byte // the full image (mapping or heap buffer)
	unmap func() error
	// adviseWG tracks the asynchronous madvise pass OpenSnapshot launches;
	// Close waits for it before unmapping so the hints never race the unmap.
	adviseWG sync.WaitGroup
}

// Library returns the snapshot's library. Its index arrays alias the mapping
// until Close.
func (s *Snapshot) Library() *Library { return s.lib }

// Vocabulary returns the snapshot's vocabulary, or nil for an id-level
// snapshot.
func (s *Snapshot) Vocabulary() *Vocabulary { return s.vocab }

// Close releases the mapping. The snapshot's Library (and every library
// extended from it) must not be used afterwards.
func (s *Snapshot) Close() error {
	if s.lib != nil && s.lib.cp != nil && s.lib.cp.id != 0 {
		if c := activeBlockCache(); c != nil {
			c.purgeSrc(s.lib.cp.id)
		}
	}
	if s.unmap == nil {
		return nil
	}
	s.adviseWG.Wait()
	u := s.unmap
	s.unmap = nil
	return u()
}

// OpenSnapshot memory-maps the snapshot at path and returns zero-copy views
// over it. Opening validates the header CRC and the section geometry — O(#
// sections), not O(library) — so a snapshot of any size opens in page-in
// time. Deep content validation is available via VerifySnapshot.
func OpenSnapshot(path string) (*Snapshot, error) {
	return OpenSnapshotFS(faultfs.OS, path)
}

// OpenSnapshotFS is OpenSnapshot over an explicit filesystem (fault
// injection; see internal/faultfs). Reads served from the resulting mapping
// bypass the filesystem by construction; only the open itself is
// injectable.
func OpenSnapshotFS(fsys faultfs.FS, path string) (*Snapshot, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, unmap, err := mmapFile(f)
	if err != nil {
		return nil, err
	}
	s, err := OpenSnapshotBytes(data)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("core: snapshot %s: %w", path, err)
	}
	s.unmap = unmap
	s.adviseAsync()
	return s, nil
}

// snapshotSections parses and CRC-checks the header plus section table.
func snapshotSections(data []byte) (map[uint32]snapSection, uint32, error) {
	if len(data) < snapHeaderSize {
		return nil, 0, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != snapshotMagic {
		return nil, 0, fmt.Errorf("bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapshotVersion {
		return nil, 0, fmt.Errorf("unsupported snapshot version %d", v)
	}
	flags := binary.LittleEndian.Uint32(data[8:])
	nSec := int(binary.LittleEndian.Uint32(data[12:]))
	if nSec <= 0 || nSec > snapMaxSections {
		return nil, 0, fmt.Errorf("implausible section count %d", nSec)
	}
	tableEnd := snapHeaderSize + snapSectSize*nSec
	if tableEnd > len(data) {
		return nil, 0, fmt.Errorf("truncated section table (%d sections, %d bytes)", nSec, len(data))
	}
	crc := crc32.ChecksumIEEE(data[:60])
	crc = crc32.Update(crc, crc32.IEEETable, data[snapHeaderSize:tableEnd])
	if want := binary.LittleEndian.Uint32(data[60:]); crc != want {
		return nil, 0, fmt.Errorf("header checksum mismatch (%#x != %#x)", crc, want)
	}
	secs := make(map[uint32]snapSection, nSec)
	for i := 0; i < nSec; i++ {
		e := data[snapHeaderSize+snapSectSize*i:]
		s := snapSection{
			id:    binary.LittleEndian.Uint32(e[0:]),
			elem:  binary.LittleEndian.Uint32(e[4:]),
			off:   binary.LittleEndian.Uint64(e[8:]),
			count: binary.LittleEndian.Uint64(e[16:]),
		}
		if s.elem != 1 && s.elem != 4 && s.elem != 8 {
			return nil, 0, fmt.Errorf("section %d: bad element size %d", s.id, s.elem)
		}
		if s.off%snapAlign != 0 {
			return nil, 0, fmt.Errorf("section %d: misaligned offset %d", s.id, s.off)
		}
		end := s.off + s.count*uint64(s.elem)
		if s.off < uint64(tableEnd) || end < s.off || end > uint64(len(data)) {
			return nil, 0, fmt.Errorf("section %d: range [%d, %d) outside file of %d bytes", s.id, s.off, end, len(data))
		}
		if _, dup := secs[s.id]; dup {
			return nil, 0, fmt.Errorf("duplicate section %d", s.id)
		}
		secs[s.id] = s
	}
	return secs, flags, nil
}

// OpenSnapshotBytes builds a Snapshot over an in-memory image. The returned
// library's arrays alias data; the caller owns data's lifetime (OpenSnapshot
// wires it to the file mapping).
func OpenSnapshotBytes(data []byte) (*Snapshot, error) {
	secs, flags, err := snapshotSections(data)
	if err != nil {
		return nil, err
	}
	nImpl := binary.LittleEndian.Uint64(data[16:])
	nAct := binary.LittleEndian.Uint64(data[24:])
	nGoal := binary.LittleEndian.Uint64(data[32:])
	nSlots := binary.LittleEndian.Uint64(data[40:])
	const maxDim = math.MaxInt32
	if nImpl > maxDim || nAct > maxDim || nGoal > maxDim || nSlots > maxDim {
		return nil, fmt.Errorf("implausible dimensions (impls=%d acts=%d goals=%d slots=%d)", nImpl, nAct, nGoal, nSlots)
	}

	sec := func(id uint32, elem uint32, count uint64) ([]byte, error) {
		s, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("missing section %d", id)
		}
		if s.elem != elem {
			return nil, fmt.Errorf("section %d: element size %d, want %d", id, s.elem, elem)
		}
		if s.count != count {
			return nil, fmt.Errorf("section %d: %d entries, want %d", id, s.count, count)
		}
		return data[s.off : s.off+s.count*uint64(s.elem)], nil
	}
	i32Sec := func(id uint32, count uint64) ([]int32, error) {
		b, err := sec(id, 4, count)
		if err != nil {
			return nil, err
		}
		return i32View[int32](b, int(count)), nil
	}

	lib := &Library{
		numActions: int(nAct),
		numGoals:   int(nGoal),
		epoch:      binary.LittleEndian.Uint64(data[48:]),
		maxImplLen: int32(binary.LittleEndian.Uint32(data[56:])),
		bounds:     &boundAux{},
	}
	lib.implLenSorted = flags&snapFlagLenSorted != 0

	var b []byte
	if b, err = sec(secImplGoal, 4, nImpl); err == nil {
		lib.implGoal = i32View[GoalID](b, int(nImpl))
		lib.implOff, err = i32Sec(secImplOff, nImpl+1)
	}
	if err == nil {
		if b, err = sec(secImplActs, 4, nSlots); err == nil {
			lib.implActs = i32View[ActionID](b, int(nSlots))
		}
	}
	if err == nil {
		lib.actOff, err = i32Sec(secActOff, nAct+1)
	}
	if err == nil {
		if b, err = sec(secGoalOff, 4, nGoal+1); err == nil {
			lib.goalOff = i32View[int32](b, int(nGoal+1))
		}
	}
	if err == nil {
		if b, err = sec(secGoalPost, 4, nImpl); err == nil {
			lib.goalPost = i32View[ImplID](b, int(nImpl))
		}
	}
	if err == nil {
		lib.agOff, err = i32Sec(secAgOff, nAct+1)
	}
	var nAG uint64
	if err == nil {
		nAG = secs[secAgGoal].count
		if b, err = sec(secAgGoal, 4, nAG); err == nil {
			lib.agGoal = i32View[GoalID](b, int(nAG))
			lib.agCnt, err = i32Sec(secAgCnt, nAG)
		}
	}
	if err == nil {
		lib.gaOff, err = i32Sec(secGaOff, nGoal+1)
	}
	var nGA uint64
	if err == nil {
		nGA = secs[secGaAct].count
		if b, err = sec(secGaAct, 4, nGA); err == nil {
			lib.gaAct = i32View[ActionID](b, int(nGA))
			lib.gaCnt, err = i32Sec(secGaCnt, nGA)
		}
	}
	if err == nil {
		lib.goalSlots, err = i32Sec(secGoalSlots, nGoal)
	}
	if err == nil {
		lib.blkOff, err = i32Sec(secBlkOff, nAct+1)
	}
	var nBlk uint64
	if err == nil {
		nBlk = secs[secBlkLast].count
		if b, err = sec(secBlkLast, 4, nBlk); err == nil {
			lib.blkLast = i32View[ImplID](b, int(nBlk))
			lib.blkMinLen, err = i32Sec(secBlkMinLen, nBlk)
		}
	}
	if err == nil {
		lib.blkMaxLen, err = i32Sec(secBlkMaxLen, nBlk)
	}
	if err != nil {
		return nil, err
	}

	if flags&snapFlagCompressed != 0 {
		pb, err := sec(secPostOff, 8, nBlk+1)
		if err != nil {
			return nil, err
		}
		blobSec, ok := secs[secPostBlob]
		if !ok {
			return nil, fmt.Errorf("missing section %d", secPostBlob)
		}
		cp := &compressedPostings{
			id:      blockCacheSrcSeq.Add(1),
			blobOff: u64View(pb, int(nBlk+1)),
			blob:    data[blobSec.off : blobSec.off+blobSec.count],
		}
		// O(1) geometry checks so block decodes can index fearlessly.
		if cp.blobOff[0] != 0 || cp.blobOff[nBlk] > blobSec.count {
			return nil, fmt.Errorf("posting blob offsets span [%d, %d] over %d bytes", cp.blobOff[0], cp.blobOff[nBlk], blobSec.count)
		}
		lib.cp = cp
	} else {
		b, err := sec(secActPost, 4, nSlots)
		if err != nil {
			return nil, err
		}
		lib.actPost = i32View[ImplID](b, int(nSlots))
	}

	// O(1) CSR spot checks: the cheap invariants every accessor leans on.
	if nImpl > 0 || nSlots > 0 {
		if lib.implOff[0] != 0 || uint64(lib.implOff[nImpl]) != nSlots {
			return nil, fmt.Errorf("implementation offsets span [%d, %d] over %d slots", lib.implOff[0], lib.implOff[nImpl], nSlots)
		}
	}
	if lib.actOff[0] != 0 || uint64(lib.actOff[nAct]) != nSlots {
		return nil, fmt.Errorf("posting offsets span [%d, %d] over %d slots", lib.actOff[0], lib.actOff[nAct], nSlots)
	}
	if lib.blkOff[0] != 0 || uint64(lib.blkOff[nAct]) != nBlk {
		return nil, fmt.Errorf("block offsets span [%d, %d] over %d blocks", lib.blkOff[0], lib.blkOff[nAct], nBlk)
	}
	if lib.goalOff[0] != 0 || uint64(lib.goalOff[nGoal]) != nImpl {
		return nil, fmt.Errorf("goal offsets span [%d, %d] over %d implementations", lib.goalOff[0], lib.goalOff[nGoal], nImpl)
	}

	snap := &Snapshot{lib: lib, data: data}
	if flags&snapFlagVocab != 0 {
		actNames, err := unpackNames(secs, data, secVocActOff, secVocActStr)
		if err != nil {
			return nil, fmt.Errorf("action vocabulary: %w", err)
		}
		goalNames, err := unpackNames(secs, data, secVocGoalOff, secVocGoalStr)
		if err != nil {
			return nil, fmt.Errorf("goal vocabulary: %w", err)
		}
		if len(actNames) < int(nAct) || len(goalNames) < int(nGoal) {
			return nil, fmt.Errorf("vocabulary (%d actions, %d goals) does not cover id space (%d, %d)",
				len(actNames), len(goalNames), nAct, nGoal)
		}
		vocab := NewVocabulary()
		for _, s := range actNames {
			vocab.Actions.Intern(s)
		}
		for _, s := range goalNames {
			vocab.Goals.Intern(s)
		}
		if vocab.Actions.Len() != len(actNames) || vocab.Goals.Len() != len(goalNames) {
			return nil, fmt.Errorf("vocabulary contains duplicate names")
		}
		snap.vocab = vocab
	}
	return snap, nil
}

// unpackNames decodes one (offsets, blob) vocabulary section pair.
func unpackNames(secs map[uint32]snapSection, data []byte, offID, strID uint32) ([]string, error) {
	offSec, ok := secs[offID]
	if !ok {
		return nil, fmt.Errorf("missing section %d", offID)
	}
	strSec, ok := secs[strID]
	if !ok {
		return nil, fmt.Errorf("missing section %d", strID)
	}
	if offSec.elem != 8 || strSec.elem != 1 || offSec.count == 0 {
		return nil, fmt.Errorf("malformed vocabulary sections")
	}
	off := u64View(data[offSec.off:offSec.off+8*offSec.count], int(offSec.count))
	blob := data[strSec.off : strSec.off+strSec.count]
	if off[0] != 0 || off[len(off)-1] != uint64(len(blob)) {
		return nil, fmt.Errorf("name offsets span [%d, %d] over %d bytes", off[0], off[len(off)-1], len(blob))
	}
	names := make([]string, 0, len(off)-1)
	for i := 0; i+1 < len(off); i++ {
		lo, hi := off[i], off[i+1]
		if hi < lo || hi-lo > snapMaxName || hi > uint64(len(blob)) {
			return nil, fmt.Errorf("implausible name %d: bytes [%d, %d)", i, lo, hi)
		}
		names = append(names, string(blob[lo:hi]))
	}
	return names, nil
}

// VerifySnapshot walks every section of an open snapshot and checks the deep
// CSR invariants — monotone offsets, strictly increasing sorted rows, ids in
// range, block metadata consistent with the (decoded) rows. It is linear in
// the snapshot and intended for tooling (goalrec-snap verify) and tests, not
// for the open path.
func VerifySnapshot(s *Snapshot) error {
	l := s.lib
	nImpl := l.NumImplementations()
	nAct, nGoal := l.numActions, l.numGoals
	for p := 0; p < nImpl; p++ {
		lo, hi := l.implOff[p], l.implOff[p+1]
		if hi < lo {
			return fmt.Errorf("core: implementation %d: negative extent", p)
		}
		acts := l.implActs[lo:hi]
		if len(acts) == 0 {
			return fmt.Errorf("core: implementation %d: empty activity", p)
		}
		for i, a := range acts {
			if a < 0 || int(a) >= nAct {
				return fmt.Errorf("core: implementation %d: action %d out of range", p, a)
			}
			if i > 0 && acts[i-1] >= a {
				return fmt.Errorf("core: implementation %d: action list not strictly increasing", p)
			}
		}
		if g := l.implGoal[p]; g < 0 || int(g) >= nGoal {
			return fmt.Errorf("core: implementation %d: goal %d out of range", p, g)
		}
	}
	var rowBuf []ImplID
	for a := 0; a < nAct; a++ {
		if l.actOff[a+1] < l.actOff[a] {
			return fmt.Errorf("core: action %d: negative posting extent", a)
		}
		var row []ImplID
		row, rowBuf = l.PostingRow(ActionID(a), rowBuf)
		if len(row) != int(l.actOff[a+1]-l.actOff[a]) {
			return fmt.Errorf("core: action %d: posting row decodes to %d entries, want %d", a, len(row), l.actOff[a+1]-l.actOff[a])
		}
		blk := l.ActionPostingBlocks(ActionID(a))
		if blk.NumBlocks() != (len(row)+PostingBlockEntries-1)/PostingBlockEntries {
			return fmt.Errorf("core: action %d: %d blocks for %d postings", a, blk.NumBlocks(), len(row))
		}
		for i, p := range row {
			if p < 0 || int(p) >= nImpl {
				return fmt.Errorf("core: action %d: posting %d out of range", a, p)
			}
			if i > 0 && row[i-1] >= p {
				return fmt.Errorf("core: action %d: posting row not strictly increasing", a)
			}
			if (i+1)%PostingBlockEntries == 0 || i == len(row)-1 {
				if blk.Last[i/PostingBlockEntries] != p {
					return fmt.Errorf("core: action %d: block %d last %d != row %d", a, i/PostingBlockEntries, blk.Last[i/PostingBlockEntries], p)
				}
			}
		}
	}
	for g := 0; g < nGoal; g++ {
		if l.goalOff[g+1] < l.goalOff[g] {
			return fmt.Errorf("core: goal %d: negative posting extent", g)
		}
		for _, p := range l.ImplsOfGoal(GoalID(g)) {
			if p < 0 || int(p) >= nImpl {
				return fmt.Errorf("core: goal %d: posting %d out of range", g, p)
			}
			if l.implGoal[p] != GoalID(g) {
				return fmt.Errorf("core: goal %d: posting %d fulfills goal %d", g, p, l.implGoal[p])
			}
		}
		acts, cnts := l.ActionsOfGoal(GoalID(g))
		for i, a := range acts {
			if a < 0 || int(a) >= nAct {
				return fmt.Errorf("core: goal %d: GA action %d out of range", g, a)
			}
			if i > 0 && acts[i-1] >= a {
				return fmt.Errorf("core: goal %d: GA row not strictly increasing", g)
			}
			if cnts[i] <= 0 {
				return fmt.Errorf("core: goal %d: non-positive GA count", g)
			}
		}
	}
	for a := 0; a < nAct; a++ {
		goals, cnts := l.GoalsOfAction(ActionID(a))
		for i, g := range goals {
			if g < 0 || int(g) >= nGoal {
				return fmt.Errorf("core: action %d: AG goal %d out of range", a, g)
			}
			if i > 0 && goals[i-1] >= g {
				return fmt.Errorf("core: action %d: AG row not strictly increasing", a)
			}
			if cnts[i] <= 0 {
				return fmt.Errorf("core: action %d: non-positive AG count", a)
			}
		}
	}
	return nil
}
