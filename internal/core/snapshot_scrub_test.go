package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goalrec/internal/faultfs"
)

// TestSnapshotChecksumFooter: a fresh snapshot scrubs clean; flipping any
// single byte — header, section payload, or padding — fails the scrub.
func TestSnapshotChecksumFooter(t *testing.T) {
	lib := snapTestLibrary(t, 500, 40, 7)
	path := filepath.Join(t.TempDir(), "lib.gsnp")
	if err := WriteSnapshotFile(path, lib, nil, SnapshotOptions{}); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	if err := ScrubSnapshotFile(nil, path); err != nil {
		t.Fatalf("scrub of a fresh snapshot: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotChecksum(data); err != nil {
		t.Fatalf("VerifySnapshotChecksum: %v", err)
	}
	// Flip one byte at a spread of offsets, including deep in section data
	// where the header CRC cannot see, and at the end of the file just before
	// the footer.
	for _, off := range []int{0, 17, snapHeaderSize + 3, len(data) / 2, len(data) - snapFooterSize - 1} {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x40
		if err := VerifySnapshotChecksum(corrupt); err == nil {
			t.Fatalf("flip at %d passed the checksum scrub", off)
		}
	}
}

// TestScrubSnapshotFileDetectsCorruption: a bit flip in a section body slips
// past OpenSnapshot (header CRC only) but not past the scrubber.
func TestScrubSnapshotFileDetectsCorruption(t *testing.T) {
	lib := snapTestLibrary(t, 500, 40, 8)
	path := filepath.Join(t.TempDir(), "lib.gsnp")
	if err := WriteSnapshotFile(path, lib, nil, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(path); err != nil {
		t.Fatalf("OpenSnapshot should not see a section-body flip at open time: %v", err)
	}
	err = ScrubSnapshotFile(nil, path)
	if err == nil {
		t.Fatal("scrub missed a section-body bit flip")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("scrub error = %v, want a checksum mismatch", err)
	}
}

// TestScrubSnapshotFileLegacy: an image without a footer (pre-footer format,
// simulated by truncating it away) falls back to structural verification and
// still passes.
func TestScrubSnapshotFileLegacy(t *testing.T) {
	lib := snapTestLibrary(t, 500, 40, 9)
	path := filepath.Join(t.TempDir(), "lib.gsnp")
	if err := WriteSnapshotFile(path, lib, nil, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := data[:len(data)-snapFooterSize]
	if err := VerifySnapshotChecksum(legacy); !errors.Is(err, ErrNoChecksum) {
		t.Fatalf("footerless image: %v, want ErrNoChecksum", err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ScrubSnapshotFile(nil, path); err != nil {
		t.Fatalf("structural fallback scrub: %v", err)
	}
}

// TestWriteSnapshotFileFaults: injected failures at every step of the atomic
// write (temp create, write, sync, close, rename, dir sync) surface an error
// and never leave a renamed-in-place snapshot behind; a one-shot fault heals
// on retry.
func TestWriteSnapshotFileFaults(t *testing.T) {
	lib := snapTestLibrary(t, 200, 30, 10)
	for _, tc := range []struct {
		name string
		rule faultfs.Rule
	}{
		{"create-temp", faultfs.Rule{Op: faultfs.OpCreateTemp, Err: faultfs.EIO, Once: true}},
		{"write", faultfs.Rule{Op: faultfs.OpWrite, Err: faultfs.ENOSPC, Once: true}},
		{"short-write", faultfs.Rule{Op: faultfs.OpWrite, Short: 100, Err: faultfs.ENOSPC, Once: true}},
		{"sync", faultfs.Rule{Op: faultfs.OpSync, Err: faultfs.EIO, Once: true}},
		{"close", faultfs.Rule{Op: faultfs.OpClose, Err: faultfs.EIO, Once: true}},
		{"rename", faultfs.Rule{Op: faultfs.OpRename, Err: faultfs.EIO, Once: true}},
		{"dir-sync", faultfs.Rule{Op: faultfs.OpSyncDir, Err: faultfs.EIO, Once: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "lib.gsnp")
			inj := faultfs.NewInjector(nil)
			inj.Fail(tc.rule)
			err := WriteSnapshotFileFS(inj, path, lib, nil, SnapshotOptions{})
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("faulted write = %v, want injected error", err)
			}
			// Everything up to rename must leave no visible snapshot. The
			// rename and dir-sync faults may leave one (rename is the commit
			// point); anything present must scrub clean.
			if _, serr := os.Stat(path); serr == nil {
				if verr := ScrubSnapshotFile(nil, path); verr != nil {
					t.Fatalf("visible snapshot after %s fault fails scrub: %v", tc.name, verr)
				}
			} else if tc.name == "dir-sync" {
				t.Fatalf("dir-sync fault happens after the rename; snapshot should exist: %v", serr)
			}
			// One-shot fault: a retry on the same path succeeds end to end.
			if err := WriteSnapshotFileFS(inj, path, lib, nil, SnapshotOptions{}); err != nil {
				t.Fatalf("retry: %v", err)
			}
			if err := ScrubSnapshotFile(inj, path); err != nil {
				t.Fatalf("scrub after retry: %v", err)
			}
			snap, err := OpenSnapshotFS(inj, path)
			if err != nil {
				t.Fatalf("open after retry: %v", err)
			}
			defer snap.Close()
			assertLibrariesEqual(t, lib, snap.Library())
		})
	}
}
