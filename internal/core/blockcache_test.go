package core

import (
	"bytes"

	"math/rand"
	"sync"
	"testing"
)

// withBlockCache points the process cache at a fresh instance for one test
// and disables it again afterwards (the package default).
func withBlockCache(t testing.TB, budget int64) {
	t.Helper()
	SetBlockCacheBytes(budget)
	t.Cleanup(func() { SetBlockCacheBytes(0) })
}

// compressedTestLibrary round-trips a synthetic library through a compressed
// in-memory snapshot image.
func compressedTestLibrary(t testing.TB, nImpl, nAct int, seed int64) *Library {
	t.Helper()
	lib := snapTestLibrary(t, nImpl, nAct, seed)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, lib, nil, SnapshotOptions{CompressPostings: true}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s, err := OpenSnapshotBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("OpenSnapshotBytes: %v", err)
	}
	return s.Library()
}

// oracleRows decodes every posting row with the cache disabled.
func oracleRows(lib *Library) [][]ImplID {
	rows := make([][]ImplID, lib.NumActions())
	for a := range rows {
		var row []ImplID
		row, _ = lib.PostingRow(ActionID(a), nil)
		rows[a] = append([]ImplID(nil), row...)
	}
	return rows
}

// TestBlockCacheBitIdentical drives PostingRow, PostingRowRange and the
// cursor over a compressed library with the cache enabled, repeatedly (so
// the doorkeeper admits and hits serve from cache), and asserts every result
// matches the cache-off oracle.
func TestBlockCacheBitIdentical(t *testing.T) {
	lib := compressedTestLibrary(t, 4000, 50, 7)
	want := oracleRows(lib)
	withBlockCache(t, 1<<20)
	var buf []ImplID
	for pass := 0; pass < 4; pass++ {
		for a := 0; a < lib.NumActions(); a++ {
			var row []ImplID
			row, buf = lib.PostingRow(ActionID(a), buf)
			if !equalRows(row, want[a]) {
				t.Fatalf("pass %d: PostingRow(%d) diverged", pass, a)
			}
			if n := len(want[a]); n > 2 {
				lo, hi := want[a][n/4], want[a][3*n/4]
				row, buf = lib.PostingRowRange(ActionID(a), lo, hi, buf)
				if !equalRows(row, subRange(want[a], lo, hi)) {
					t.Fatalf("pass %d: PostingRowRange(%d) diverged", pass, a)
				}
			}
			cur := lib.PostingRowCursor(ActionID(a))
			for i := 0; i < cur.Len(); i += 17 {
				if got := cur.At(i); got != want[a][i] {
					t.Fatalf("pass %d: cursor At(%d,%d) = %d, want %d", pass, a, i, got, want[a][i])
				}
			}
		}
	}
	st := BlockCacheMetrics()
	if st.Hits == 0 || st.Admitted == 0 {
		t.Fatalf("cache never engaged: %+v", st)
	}
}

func equalRows(a, b []ImplID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBlockCacheEvictionBounded hammers a cache whose budget holds only a
// small fraction of the decoded blocks and asserts the resident bytes stay
// within budget while evictions make room. Run under -race in CI.
func TestBlockCacheEvictionBounded(t *testing.T) {
	lib := compressedTestLibrary(t, 20000, 30, 13)
	const budget = 32 << 10
	withBlockCache(t, budget)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf []ImplID
			for i := 0; i < 3000; i++ {
				a := ActionID(rng.Intn(lib.NumActions()))
				_, buf = lib.PostingRow(a, buf)
				if st := BlockCacheMetrics(); st.Bytes > st.BudgetBytes {
					t.Errorf("cache bytes %d exceed budget %d", st.Bytes, st.BudgetBytes)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := BlockCacheMetrics()
	if st.Evicted == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	if st.Bytes > st.BudgetBytes {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, st.BudgetBytes)
	}
}

// TestBlockCacheConcurrentEpochSwap has readers pinned to distinct library
// generations while new generations open, warm up and close concurrently —
// the ingest/epoch-swap pattern. Every read must match its own generation's
// oracle: a block served for one source id must never surface another's
// content. Run under -race in CI.
func TestBlockCacheConcurrentEpochSwap(t *testing.T) {
	withBlockCache(t, 256<<10)
	const gens = 3
	libs := make([]*Library, gens)
	oracles := make([][][]ImplID, gens)
	for g := 0; g < gens; g++ {
		libs[g] = compressedTestLibrary(t, 3000, 40, int64(100+g))
		oracles[g] = oracleRows(libs[g])
	}
	stop := make(chan struct{})
	var readers, churn sync.WaitGroup
	for g := 0; g < gens; g++ {
		for w := 0; w < 2; w++ {
			readers.Add(1)
			go func(g int, seed int64) {
				defer readers.Done()
				rng := rand.New(rand.NewSource(seed))
				var buf []ImplID
				for {
					select {
					case <-stop:
						return
					default:
					}
					a := ActionID(rng.Intn(libs[g].NumActions()))
					var row []ImplID
					row, buf = libs[g].PostingRow(a, buf)
					if !equalRows(row, oracles[g][a]) {
						t.Errorf("gen %d: row %d diverged under concurrent swaps", g, a)
						return
					}
				}
			}(g, int64(g*10+w))
		}
	}
	// Churn: open new generations (fresh source ids flooding the cache),
	// read through them, close them again — the cache purges on close.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < 6; i++ {
			lib := snapTestLibrary(t, 2000, 35, int64(1000+i))
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, lib, nil, SnapshotOptions{CompressPostings: true}); err != nil {
				t.Errorf("WriteSnapshot: %v", err)
				return
			}
			s, err := OpenSnapshotBytes(buf.Bytes())
			if err != nil {
				t.Errorf("OpenSnapshotBytes: %v", err)
				return
			}
			var rb []ImplID
			for a := 0; a < s.Library().NumActions(); a++ {
				_, rb = s.Library().PostingRow(ActionID(a), rb)
			}
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
				return
			}
		}
	}()
	churn.Wait()
	close(stop)
	readers.Wait()
}

// FuzzBlockCache derives a budget and an access pattern from the fuzzed
// seeds and checks cached reads against the cache-off oracle, including
// overlay-extended (post-ingest) generations that share the base blob.
func FuzzBlockCache(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(3))
	f.Add(int64(99), uint16(1), uint8(1))
	f.Add(int64(-7), uint16(512), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, budgetKB uint16, extra uint8) {
		lib := compressedTestLibrary(t, 500+int(extra)*37, 2+int(extra%19), seed)
		want := oracleRows(lib)
		withBlockCache(t, int64(budgetKB%1024+1)<<10)
		rng := rand.New(rand.NewSource(seed))
		var buf []ImplID
		for i := 0; i < 400; i++ {
			a := ActionID(rng.Intn(lib.NumActions()))
			switch rng.Intn(3) {
			case 0:
				var row []ImplID
				row, buf = lib.PostingRow(a, buf)
				if !equalRows(row, want[a]) {
					t.Fatalf("PostingRow(%d) diverged", a)
				}
			case 1:
				n := len(want[a])
				if n == 0 {
					continue
				}
				lo, hi := want[a][rng.Intn(n)], ImplID(rng.Intn(600))
				var row []ImplID
				row, buf = lib.PostingRowRange(a, lo, hi, buf)
				if !equalRows(row, subRange(want[a], lo, hi)) {
					t.Fatalf("PostingRowRange(%d,%d,%d) diverged", a, lo, hi)
				}
			case 2:
				cur := lib.PostingRowCursor(a)
				for j := 0; j < cur.Len(); j += 1 + rng.Intn(40) {
					if got := cur.At(j); got != want[a][j] {
						t.Fatalf("cursor At(%d,%d) = %d, want %d", a, j, got, want[a][j])
					}
				}
			}
		}
	})
}

// TestDecodeRowAppendAllocs pins the satellite fix: with a pre-sized pooled
// buffer and the cache disabled, a full-row decode performs zero allocations
// (slices.Grow reserves the row once instead of growing per block).
func TestDecodeRowAppendAllocs(t *testing.T) {
	lib := compressedTestLibrary(t, 30000, 8, 3)
	// Hottest action: the longest row, spanning many blocks.
	var a ActionID
	for i := 0; i < lib.NumActions(); i++ {
		if lib.ActionDegree(ActionID(i)) > lib.ActionDegree(a) {
			a = ActionID(i)
		}
	}
	if lib.ActionDegree(a) < 4*PostingBlockEntries {
		t.Fatalf("test row too short: %d", lib.ActionDegree(a))
	}
	buf := make([]ImplID, 0, lib.ActionDegree(a))
	allocs := testing.AllocsPerRun(20, func() {
		_, buf = lib.PostingRow(a, buf)
	})
	if allocs != 0 {
		t.Fatalf("PostingRow allocated %.1f times per decode, want 0", allocs)
	}
}

// BenchmarkDecodeRowAppend reports the per-decode allocation count (asserted
// at zero by TestDecodeRowAppendAllocs) and the decode throughput.
func BenchmarkDecodeRowAppend(b *testing.B) {
	lib := compressedTestLibrary(b, 30000, 8, 3)
	var a ActionID
	for i := 0; i < lib.NumActions(); i++ {
		if lib.ActionDegree(ActionID(i)) > lib.ActionDegree(a) {
			a = ActionID(i)
		}
	}
	buf := make([]ImplID, 0, lib.ActionDegree(a))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, buf = lib.PostingRow(a, buf)
	}
}

// BenchmarkPostingRowCached contrasts cold (cache off) and warm (cache on,
// primed) full-row reads.
func BenchmarkPostingRowCached(b *testing.B) {
	lib := compressedTestLibrary(b, 30000, 16, 5)
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			if mode == "warm" {
				withBlockCache(b, 64<<20)
				var buf []ImplID
				for pass := 0; pass < 2; pass++ {
					for a := 0; a < lib.NumActions(); a++ {
						_, buf = lib.PostingRow(ActionID(a), buf)
					}
				}
			}
			var buf []ImplID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, buf = lib.PostingRow(ActionID(i%lib.NumActions()), buf)
			}
		})
	}
}
