package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"goalrec/internal/intset"
)

func TestBuilderAddValidation(t *testing.T) {
	var b Builder
	if _, err := b.Add(0, nil); !errors.Is(err, ErrEmptyActivity) {
		t.Errorf("Add with empty activity: err = %v, want ErrEmptyActivity", err)
	}
	if _, err := b.Add(-1, actions(1)); !errors.Is(err, ErrNegativeID) {
		t.Errorf("Add with negative goal: err = %v, want ErrNegativeID", err)
	}
	if _, err := b.Add(0, actions(-2)); !errors.Is(err, ErrNegativeID) {
		t.Errorf("Add with negative action: err = %v, want ErrNegativeID", err)
	}
	if b.Len() != 0 {
		t.Errorf("failed Adds changed Len to %d", b.Len())
	}
}

func TestBuilderNormalizesActions(t *testing.T) {
	var b Builder
	id, err := b.Add(3, actions(5, 1, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	lib := b.Build()
	if got := lib.Actions(id); !equalActions(got, actions(1, 3, 5)) {
		t.Errorf("Actions = %v, want [1 3 5]", got)
	}
	if lib.Goal(id) != 3 {
		t.Errorf("Goal = %d, want 3", lib.Goal(id))
	}
}

func TestBuilderDoesNotAliasInput(t *testing.T) {
	var b Builder
	in := actions(2, 1)
	if _, err := b.Add(0, in); err != nil {
		t.Fatal(err)
	}
	in[0], in[1] = 9, 9
	lib := b.Build()
	if got := lib.Actions(0); !equalActions(got, actions(1, 2)) {
		t.Errorf("builder aliased caller slice: Actions = %v", got)
	}
}

func TestEmptyLibrary(t *testing.T) {
	lib := new(Builder).Build()
	if lib.NumImplementations() != 0 || lib.NumActions() != 0 || lib.NumGoals() != 0 {
		t.Errorf("empty library has non-zero dimensions: %+v", lib.Stats())
	}
	if got := lib.ImplementationSpace(actions(1, 2)); got != nil {
		t.Errorf("IS on empty library = %v, want nil", got)
	}
	if got := lib.ImplsOfAction(0); got != nil {
		t.Errorf("ImplsOfAction on empty library = %v", got)
	}
	if got := lib.ImplsOfGoal(0); got != nil {
		t.Errorf("ImplsOfGoal on empty library = %v", got)
	}
}

func TestPaperExampleIndexes(t *testing.T) {
	lib := paperLibrary(t)

	if lib.NumImplementations() != 5 {
		t.Fatalf("NumImplementations = %d, want 5", lib.NumImplementations())
	}
	if lib.NumActions() != 6 {
		t.Errorf("NumActions = %d, want 6", lib.NumActions())
	}
	if lib.NumGoals() != 5 {
		t.Errorf("NumGoals = %d, want 5", lib.NumGoals())
	}

	// Example 4.3: IS(a1) = {p1, p2, p3, p5}.
	if got := lib.ImplsOfAction(0); !equalImpls(got, impls(0, 1, 2, 4)) {
		t.Errorf("IS(a1) = %v, want [0 1 2 4]", got)
	}
	// GS(a1) = {g1, g2, g3, g5}.
	if got := lib.GoalSpace(actions(0)); !equalGoals(got, goals(0, 1, 2, 4)) {
		t.Errorf("GS(a1) = %v, want [0 1 2 4]", got)
	}
	// AS(a1) = {a2, a3, a4, a5, a6}.
	if got := lib.ActionSpace(actions(0)); !equalActions(got, actions(1, 2, 3, 4, 5)) {
		t.Errorf("AS(a1) = %v, want [1 2 3 4 5]", got)
	}

	// Each goal fulfilled by exactly one implementation here.
	for g := GoalID(0); g < 5; g++ {
		if got := lib.ImplsOfGoal(g); len(got) != 1 {
			t.Errorf("ImplsOfGoal(%d) = %v, want exactly one", g, got)
		}
	}
	if lib.ActionDegree(0) != 4 {
		t.Errorf("ActionDegree(a1) = %d, want 4", lib.ActionDegree(0))
	}
}

func TestActionSpaceSelfExclusion(t *testing.T) {
	var b Builder
	// a0 appears only alone; a1 and a2 co-occur.
	mustAdd(t, &b, 0, actions(0))
	mustAdd(t, &b, 1, actions(1, 2))
	lib := b.Build()

	if got := lib.ActionSpace(actions(0)); len(got) != 0 {
		t.Errorf("AS of an action with only singleton impls = %v, want empty", got)
	}
	// For H = {a1, a2} both belong to AS(H): each co-occurs with the other.
	if got := lib.ActionSpace(actions(1, 2)); !equalActions(got, actions(1, 2)) {
		t.Errorf("AS({a1,a2}) = %v, want [1 2]", got)
	}
	// Candidates strips the activity itself.
	if got := lib.Candidates(actions(1, 2)); len(got) != 0 {
		t.Errorf("Candidates({a1,a2}) = %v, want empty", got)
	}
	if got := lib.Candidates(actions(1)); !equalActions(got, actions(2)) {
		t.Errorf("Candidates({a1}) = %v, want [2]", got)
	}
}

func TestImplementationSpaceDeduplicates(t *testing.T) {
	lib := paperLibrary(t)
	// a1 and a2 share p1 and p5; the space must contain each impl once.
	got := lib.ImplementationSpace(actions(0, 1))
	if !equalImpls(got, impls(0, 1, 2, 4)) {
		t.Errorf("IS({a1,a2}) = %v, want [0 1 2 4]", got)
	}
	// Unsorted input is accepted.
	if got2 := lib.ImplementationSpace(actions(1, 0)); !equalImpls(got2, got) {
		t.Errorf("IS unsorted = %v, want %v", got2, got)
	}
}

func TestOutOfRangeLookups(t *testing.T) {
	lib := paperLibrary(t)
	if got := lib.ImplsOfAction(99); got != nil {
		t.Errorf("ImplsOfAction(99) = %v, want nil", got)
	}
	if got := lib.ImplsOfAction(-1); got != nil {
		t.Errorf("ImplsOfAction(-1) = %v, want nil", got)
	}
	if got := lib.ImplsOfGoal(99); got != nil {
		t.Errorf("ImplsOfGoal(99) = %v, want nil", got)
	}
}

func TestCompletenessAndCloseness(t *testing.T) {
	lib := paperLibrary(t)
	h := actions(0, 1) // a1, a2

	// p1 = {a1,a2,a3}: 2 of 3 done, 1 missing.
	if got := lib.Completeness(0, h); got != 2.0/3.0 {
		t.Errorf("completeness(p1) = %v, want 2/3", got)
	}
	if got := lib.Closeness(0, h); got != 1.0 {
		t.Errorf("closeness(p1) = %v, want 1", got)
	}
	// p2 = {a1,a4}: 1 of 2 done.
	if got := lib.Completeness(1, h); got != 0.5 {
		t.Errorf("completeness(p2) = %v, want 0.5", got)
	}
	// p4 = {a4,a6}: nothing done, 2 missing.
	if got := lib.Completeness(3, h); got != 0 {
		t.Errorf("completeness(p4) = %v, want 0", got)
	}
	if got := lib.Closeness(3, h); got != 0.5 {
		t.Errorf("closeness(p4) = %v, want 0.5", got)
	}
	// A fully covered implementation has closeness above any partial value.
	full := actions(0, 1, 2)
	if got := lib.Closeness(0, full); got <= float64(lib.ImplLen(0)) {
		t.Errorf("closeness of complete impl = %v, want > |A|", got)
	}
}

func TestCompletenessWith(t *testing.T) {
	lib := paperLibrary(t)
	h := actions(0) // a1
	// p1 = {a1,a2,a3}; recommending a2 raises completeness from 1/3 to 2/3.
	if got := lib.CompletenessWith(0, h, actions(1)); got != 2.0/3.0 {
		t.Errorf("CompletenessWith = %v, want 2/3", got)
	}
	// Extra actions already in H must not be double counted.
	if got := lib.CompletenessWith(0, h, actions(0)); got != 1.0/3.0 {
		t.Errorf("CompletenessWith double-counted: %v, want 1/3", got)
	}
	// Irrelevant extras change nothing.
	if got := lib.CompletenessWith(0, h, actions(5)); got != 1.0/3.0 {
		t.Errorf("CompletenessWith with irrelevant extra = %v, want 1/3", got)
	}
}

func TestGoalCompleteness(t *testing.T) {
	var b Builder
	// Goal 0 has two implementations; the best one counts.
	mustAdd(t, &b, 0, actions(0, 1))       // 1/2 with H={a0}
	mustAdd(t, &b, 0, actions(0, 2, 3, 4)) // 1/4 with H={a0}
	lib := b.Build()
	if got := lib.GoalCompleteness(0, actions(0), nil); got != 0.5 {
		t.Errorf("GoalCompleteness = %v, want 0.5 (best implementation)", got)
	}
	if got := lib.GoalCompleteness(0, actions(0), actions(1)); got != 1 {
		t.Errorf("GoalCompleteness with extra = %v, want 1", got)
	}
	if got := lib.GoalCompleteness(99, actions(0), nil); got != 0 {
		t.Errorf("GoalCompleteness of unknown goal = %v, want 0", got)
	}
}

func TestStats(t *testing.T) {
	lib := paperLibrary(t)
	s := lib.Stats()
	if s.Implementations != 5 || s.Actions != 6 || s.Goals != 5 {
		t.Errorf("Stats = %+v", s)
	}
	if s.TotalSlots != 13 {
		t.Errorf("TotalSlots = %d, want 13", s.TotalSlots)
	}
	if s.AvgImplLen != 13.0/5.0 {
		t.Errorf("AvgImplLen = %v, want 2.6", s.AvgImplLen)
	}
	if s.Connectivity != 13.0/6.0 {
		t.Errorf("Connectivity = %v, want 13/6", s.Connectivity)
	}
	if s.MaxConnectivity != 4 {
		t.Errorf("MaxConnectivity = %v, want 4 (a1)", s.MaxConnectivity)
	}
	if s.String() == "" {
		t.Error("Stats.String is empty")
	}
}

func TestLibraryFrequency(t *testing.T) {
	lib := paperLibrary(t)
	freq := lib.LibraryFrequency()
	if len(freq) != 6 {
		t.Fatalf("LibraryFrequency length = %d, want 6", len(freq))
	}
	if freq[0] != 4.0/5.0 {
		t.Errorf("freq(a1) = %v, want 0.8", freq[0])
	}
	if freq[4] != 1.0/5.0 {
		t.Errorf("freq(a5) = %v, want 0.2", freq[4])
	}
}

func TestConnectivityPercentile(t *testing.T) {
	lib := paperLibrary(t)
	// Degrees: a1=4, a2=2, a3=2, a4=2, a5=1, a6=2 → sorted 1,2,2,2,2,4.
	if got := lib.ConnectivityPercentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := lib.ConnectivityPercentile(100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := lib.ConnectivityPercentile(50); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := new(Builder).Build().ConnectivityPercentile(50); got != 0 {
		t.Errorf("percentile of empty library = %v, want 0", got)
	}
}

func mustAdd(t testing.TB, b *Builder, g GoalID, a []ActionID) ImplID {
	t.Helper()
	id, err := b.Add(g, a)
	if err != nil {
		t.Fatalf("Add(%d, %v): %v", g, a, err)
	}
	return id
}

// randomLibrary builds a library with n implementations over actionSpace
// actions and goalSpace goals for property tests.
func randomLibrary(r *rand.Rand, n, actionSpace, goalSpace int) *Library {
	b := NewBuilder(n, 4)
	for i := 0; i < n; i++ {
		size := 1 + r.Intn(6)
		acts := make([]ActionID, size)
		for j := range acts {
			acts[j] = ActionID(r.Intn(actionSpace))
		}
		if _, err := b.Add(GoalID(r.Intn(goalSpace)), acts); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestIndexConsistencyProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomLibrary(r, 1+r.Intn(60), 20, 10))
		},
	}
	// Every posting in A-GI-idx corresponds to an implementation that
	// actually contains the action, and vice versa; same for G-GI-idx.
	f := func(lib *Library) bool {
		for a := ActionID(0); int(a) < lib.NumActions(); a++ {
			posts := lib.ImplsOfAction(a)
			if !intset.IsSorted(posts) {
				return false
			}
			for _, p := range posts {
				if !intset.Contains(lib.Actions(p), a) {
					return false
				}
			}
		}
		total := 0
		for p := 0; p < lib.NumImplementations(); p++ {
			acts := lib.Actions(ImplID(p))
			if !intset.IsSorted(acts) {
				return false
			}
			total += len(acts)
			for _, a := range acts {
				if !intset.Contains(lib.ImplsOfAction(a), ImplID(p)) {
					return false
				}
			}
			g := lib.Goal(ImplID(p))
			if !intset.Contains(lib.ImplsOfGoal(g), ImplID(p)) {
				return false
			}
		}
		// Postings cover exactly the slots.
		sum := 0
		for a := ActionID(0); int(a) < lib.NumActions(); a++ {
			sum += lib.ActionDegree(a)
		}
		return sum == total
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpacesConsistencyProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomLibrary(r, 1+r.Intn(60), 20, 10))
			h := make([]ActionID, 1+r.Intn(5))
			for i := range h {
				h[i] = ActionID(r.Intn(20))
			}
			v[1] = reflect.ValueOf(h)
		},
	}
	f := func(lib *Library, h []ActionID) bool {
		is := lib.ImplementationSpace(h)
		gs := lib.GoalSpace(h)
		cand := lib.Candidates(h)
		hs := intset.FromUnsorted(intset.Clone(h))

		// Every implementation in IS intersects H; its goal is in GS.
		for _, p := range is {
			if intset.IntersectionLen(lib.Actions(p), hs) == 0 {
				return false
			}
			if !intset.Contains(gs, lib.Goal(p)) {
				return false
			}
		}
		// Every goal in GS comes from some implementation in IS.
		for _, g := range gs {
			found := false
			for _, p := range lib.ImplsOfGoal(g) {
				if intset.Contains(is, p) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Candidates never include the activity and always co-occur with it.
		for _, a := range cand {
			if intset.Contains(hs, a) {
				return false
			}
			hit := false
			for _, p := range lib.ImplsOfAction(a) {
				if intset.IntersectionLen(lib.Actions(p), hs) > 0 {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return intset.IsSorted(is) && intset.IsSorted(gs) && intset.IsSorted(cand)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
