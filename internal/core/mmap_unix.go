//go:build unix

package core

import (
	"fmt"
	"syscall"

	"goalrec/internal/faultfs"
)

// mmapFile maps f read-only and returns the mapping plus its release
// function. Empty files map to a nil slice with a no-op release.
func mmapFile(f faultfs.File) ([]byte, func() error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("core: snapshot too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("core: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
