package core

import "sort"

// Impact-ordered id remapping (the build-time layout pass behind the
// WithImpactOrdering option): action ids are reassigned frequency-descending
// and implementation ids are re-clustered so that block-max metadata gets
// sharp and posting scans touch cache-friendly runs.
//
//   - Actions: degree (|IS(a)|) descending, ties by old id. Hot posting rows
//     get the smallest ids, so a MaxScore-style candidate walk in ascending
//     id order visits candidates in (near-)decreasing upper-bound order and
//     its suffix-degree early-exit bound is exact at every position.
//   - Implementations: |A_p| ascending, then by goal, then old id. Length
//     clustering makes the per-block min/max |A_p| nearly tight — exactly
//     the terms the Focus bounds divide by — and turns a score floor into a
//     global id cutoff; the goal tiebreak clusters co-occurring
//     implementations (one goal's implementations share actions) into a few
//     contiguous runs per goal, keeping goal-major walks cache-local.
//
// The remap is a pure relabeling: every score is preserved once ids are
// translated, so callers that map ids back to names (goalrec rebuilds its
// vocabulary against the permutation) observe the same recommendation set
// with the same scores. Only the order *within* an exactly-tied score layer
// can differ, because the id tiebreak now runs on the remapped ids.

// ImpactPermutation records the action relabeling an ImpactOrder applied.
// Goal ids are never remapped.
type ImpactPermutation struct {
	// ActionOld[n] is the old id of the action now numbered n.
	ActionOld []ActionID
	// ActionNew[o] is the new id of the action previously numbered o.
	ActionNew []ActionID
}

// ImpactOrder returns an impact-ordered copy of l together with the action
// permutation it applied. The copy carries the same epoch and goal ids; the
// implementation count, degrees and all set relations are preserved under
// the permutation.
func ImpactOrder(l *Library) (*Library, ImpactPermutation) {
	nAct := l.numActions
	nImpl := l.NumImplementations()

	perm := ImpactPermutation{
		ActionOld: make([]ActionID, nAct),
		ActionNew: make([]ActionID, nAct),
	}
	for i := range perm.ActionOld {
		perm.ActionOld[i] = ActionID(i)
	}
	sort.Slice(perm.ActionOld, func(i, j int) bool {
		a, b := perm.ActionOld[i], perm.ActionOld[j]
		da, db := l.ActionDegree(a), l.ActionDegree(b)
		if da != db {
			return da > db
		}
		return a < b
	})
	for n, o := range perm.ActionOld {
		perm.ActionNew[o] = ActionID(n)
	}

	// Implementation order: length ascending, then goal, then old id.
	// Global length order is what turns a Focus score floor into an id
	// cutoff; the goal tiebreak keeps each goal's implementations in a
	// handful of contiguous runs (one per length class), so goal-major
	// scans — which walk G-GI rows and dereference every implementation —
	// stay cache-local instead of scattering across the whole id space.
	// Implementations of one goal share actions by construction, so this is
	// also the co-occurrence clustering that packs posting-row neighbors
	// next to each other.
	order := make([]ImplID, nImpl)
	for p := 0; p < nImpl; p++ {
		order[p] = ImplID(p)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		la, lb := l.ImplLen(a), l.ImplLen(b)
		if la != lb {
			return la < lb
		}
		if l.implGoal[a] != l.implGoal[b] {
			return l.implGoal[a] < l.implGoal[b]
		}
		return a < b
	})

	out := &Library{
		implGoal:   make([]GoalID, nImpl),
		implOff:    make([]int32, 1, nImpl+1),
		implActs:   make([]ActionID, 0, len(l.implActs)),
		numActions: nAct,
		numGoals:   l.numGoals,
		epoch:      l.epoch,
	}
	for i, p := range order {
		out.implGoal[i] = l.implGoal[p]
		start := len(out.implActs)
		for _, a := range l.implActions(p) {
			out.implActs = append(out.implActs, perm.ActionNew[a])
		}
		row := out.implActs[start:]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		out.implOff = append(out.implOff, int32(len(out.implActs)))
	}
	out.buildIndexes()
	return out, perm
}
