package core

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes the shape of a library. Connectivity — the average number
// of implementations an action participates in — is the quantity the paper's
// complexity analysis (Section 5.4) and scalability study (Figure 7) pivot
// on.
type Stats struct {
	Implementations int
	Actions         int     // actions that occur in at least one implementation
	ActionIDSpace   int     // max action id + 1
	Goals           int     // goals with at least one implementation
	GoalIDSpace     int     // max goal id + 1
	TotalSlots      int     // Σ |A_p|
	AvgImplLen      float64 // mean |A_p|
	MaxImplLen      int
	Connectivity    float64 // mean implementations per occurring action
	MaxConnectivity int
	AvgImplsPerGoal float64

	// AG-idx shape: distinct goals per occurring action. The ratio of
	// Connectivity to AvgGoalsPerAction is the compression the AG-idx wins
	// over the raw A-GI postings for goal-level consumers.
	AGEntries         int     // total AG-idx (action, goal) pairs
	AvgGoalsPerAction float64 // mean distinct goals per occurring action
	MaxGoalsPerAction int
}

// Stats scans the library and returns its summary statistics.
func (l *Library) Stats() Stats {
	s := Stats{
		Implementations: l.NumImplementations(),
		ActionIDSpace:   l.NumActions(),
		GoalIDSpace:     l.NumGoals(),
		TotalSlots:      len(l.implActs),
	}
	for a := ActionID(0); int(a) < l.numActions; a++ {
		if d := l.ActionDegree(a); d > 0 {
			s.Actions++
			if d > s.MaxConnectivity {
				s.MaxConnectivity = d
			}
		}
		if gd := l.GoalDegree(a); gd > 0 {
			s.AGEntries += gd
			if gd > s.MaxGoalsPerAction {
				s.MaxGoalsPerAction = gd
			}
		}
	}
	for g := GoalID(0); int(g) < l.numGoals; g++ {
		if len(l.ImplsOfGoal(g)) > 0 {
			s.Goals++
		}
	}
	for p := 0; p < s.Implementations; p++ {
		if n := l.ImplLen(ImplID(p)); n > s.MaxImplLen {
			s.MaxImplLen = n
		}
	}
	if s.Implementations > 0 {
		s.AvgImplLen = float64(s.TotalSlots) / float64(s.Implementations)
	}
	if s.Actions > 0 {
		s.Connectivity = float64(s.TotalSlots) / float64(s.Actions)
	}
	if s.Goals > 0 {
		s.AvgImplsPerGoal = float64(s.Implementations) / float64(s.Goals)
	}
	if s.Actions > 0 {
		s.AvgGoalsPerAction = float64(s.AGEntries) / float64(s.Actions)
	}
	return s
}

// String renders the statistics in a compact one-per-line form.
func (s Stats) String() string {
	return fmt.Sprintf(
		"implementations=%d actions=%d goals=%d slots=%d avgImplLen=%.2f maxImplLen=%d connectivity=%.2f maxConnectivity=%d implsPerGoal=%.2f goalsPerAction=%.2f",
		s.Implementations, s.Actions, s.Goals, s.TotalSlots,
		s.AvgImplLen, s.MaxImplLen, s.Connectivity, s.MaxConnectivity, s.AvgImplsPerGoal,
		s.AvgGoalsPerAction)
}

// LibraryFrequency returns, for every action id, the fraction of
// implementations containing it: the x-axis of the paper's Figure 6.
func (l *Library) LibraryFrequency() []float64 {
	out := make([]float64, l.numActions)
	n := float64(l.NumImplementations())
	if n == 0 {
		return out
	}
	for a := range out {
		out[a] = float64(l.ActionDegree(ActionID(a))) / n
	}
	return out
}

// ConnectivityPercentile returns the p-th percentile (0..100) of per-action
// connectivity over occurring actions. It returns 0 for an empty library.
func (l *Library) ConnectivityPercentile(p float64) float64 {
	var degrees []int
	for a := ActionID(0); int(a) < l.numActions; a++ {
		if d := l.ActionDegree(a); d > 0 {
			degrees = append(degrees, d)
		}
	}
	if len(degrees) == 0 {
		return 0
	}
	sort.Ints(degrees)
	rank := p / 100 * float64(len(degrees)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return float64(degrees[lo])
	}
	frac := rank - float64(lo)
	return float64(degrees[lo])*(1-frac) + float64(degrees[hi])*frac
}
