package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// This file provides two persistence formats for goal-implementation
// libraries:
//
//   - a human-editable JSON-lines format, one implementation per line, with
//     string goal/action names resolved through a Vocabulary; and
//   - a compact little-endian binary format for the id-level library, used to
//     snapshot large synthetic libraries between benchmark runs.

// jsonImpl is the JSON-lines wire form of one implementation.
type jsonImpl struct {
	Goal    string   `json:"goal"`
	Actions []string `json:"actions"`
}

// WriteJSONLines writes every implementation of l to w, one JSON object per
// line, resolving names through vocab.
func WriteJSONLines(w io.Writer, l *Library, vocab *Vocabulary) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for p := 0; p < l.NumImplementations(); p++ {
		impl := jsonImpl{Goal: vocab.GoalName(l.Goal(ImplID(p)))}
		for _, a := range l.Actions(ImplID(p)) {
			impl.Actions = append(impl.Actions, vocab.ActionName(a))
		}
		if err := enc.Encode(&impl); err != nil {
			return fmt.Errorf("core: encoding implementation %d: %w", p, err)
		}
	}
	return bw.Flush()
}

// ReadJSONLines parses a JSON-lines library from r, interning names into a
// fresh Vocabulary.
func ReadJSONLines(r io.Reader) (*Library, *Vocabulary, error) {
	vocab := NewVocabulary()
	b := NewBuilder(0, 0)
	dec := json.NewDecoder(r)
	line := 0
	for {
		var impl jsonImpl
		if err := dec.Decode(&impl); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("core: parsing implementation %d: %w", line, err)
		}
		line++
		goal := GoalID(vocab.Goals.Intern(impl.Goal))
		actions := make([]ActionID, len(impl.Actions))
		for i, name := range impl.Actions {
			actions[i] = ActionID(vocab.Actions.Intern(name))
		}
		if _, err := b.Add(goal, actions); err != nil {
			return nil, nil, fmt.Errorf("core: implementation %d: %w", line, err)
		}
	}
	return b.Build(), vocab, nil
}

// binaryMagic identifies the binary library snapshot format.
const binaryMagic = uint32(0x474c4942) // "GLIB"

const binaryVersion = uint32(1)

// WriteBinary writes the id-level library to w in the compact snapshot
// format.
func WriteBinary(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{
		binaryMagic, binaryVersion,
		uint32(l.NumImplementations()), uint32(l.numActions), uint32(l.numGoals),
		uint32(len(l.implActs)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("core: writing header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, l.implGoal); err != nil {
		return fmt.Errorf("core: writing goals: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, l.implOff); err != nil {
		return fmt.Errorf("core: writing offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, l.implActs); err != nil {
		return fmt.Errorf("core: writing actions: %w", err)
	}
	return bw.Flush()
}

// ReadBinary reads a library snapshot written by WriteBinary and rebuilds
// its postings indexes (including the AG-idx, which is derived rather than
// serialized: rebuilding is linear in the snapshot size and keeps the wire
// format at version 1). The implementation CSR is validated in place —
// strictly increasing action lists, non-negative ids, consistent offsets —
// and indexed directly, instead of re-normalizing every implementation
// through a Builder, so loading is one linear pass.
func ReadBinary(r io.Reader) (*Library, error) {
	br := bufio.NewReader(r)
	var hdr [6]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("core: bad magic %#x", hdr[0])
	}
	if hdr[1] != binaryVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", hdr[1])
	}
	nImpl, nSlots := int(hdr[2]), int(hdr[5])
	nAct, nGoal := int(hdr[3]), int(hdr[4])
	// Sanity bounds: reject sizes a corrupt header could use to force huge
	// allocations. maxSnapshotEntries is far above any real library (the
	// paper's full-scale foodmart has ~1.9M slots).
	const maxSnapshotEntries = 1 << 26
	if nImpl < 0 || nSlots < 0 || nImpl > maxSnapshotEntries || nSlots > maxSnapshotEntries {
		return nil, fmt.Errorf("core: implausible snapshot sizes (impls=%d, slots=%d)", nImpl, nSlots)
	}
	if nAct < 0 || nGoal < 0 || nAct > maxSnapshotEntries || nGoal > maxSnapshotEntries {
		return nil, fmt.Errorf("core: implausible snapshot dimensions (actions=%d, goals=%d)", nAct, nGoal)
	}
	if nSlots < nImpl {
		return nil, fmt.Errorf("core: corrupt snapshot: %d slots for %d implementations", nSlots, nImpl)
	}
	implGoal := make([]GoalID, nImpl)
	implOff := make([]int32, nImpl+1)
	implActs := make([]ActionID, nSlots)
	if err := binary.Read(br, binary.LittleEndian, implGoal); err != nil {
		return nil, fmt.Errorf("core: reading goals: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, implOff); err != nil {
		return nil, fmt.Errorf("core: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, implActs); err != nil {
		return nil, fmt.Errorf("core: reading actions: %w", err)
	}
	if implOff[0] != 0 || int(implOff[nImpl]) != nSlots {
		return nil, fmt.Errorf("core: corrupt snapshot: offsets span [%d, %d] over %d slots",
			implOff[0], implOff[nImpl], nSlots)
	}
	var maxAction ActionID = -1
	var maxGoal GoalID = -1
	for p := 0; p < nImpl; p++ {
		lo, hi := implOff[p], implOff[p+1]
		if hi <= lo || int(hi) > nSlots {
			return nil, fmt.Errorf("core: corrupt offsets for implementation %d", p)
		}
		acts := implActs[lo:hi]
		if acts[0] < 0 {
			return nil, fmt.Errorf("core: implementation %d: %w: action %d", p, ErrNegativeID, acts[0])
		}
		for i := 1; i < len(acts); i++ {
			if acts[i] <= acts[i-1] {
				return nil, fmt.Errorf("core: implementation %d: action list not strictly increasing at slot %d", p, i)
			}
		}
		if g := implGoal[p]; g < 0 {
			return nil, fmt.Errorf("core: implementation %d: %w: goal %d", p, ErrNegativeID, g)
		} else if g > maxGoal {
			maxGoal = g
		}
		if last := acts[len(acts)-1]; last > maxAction {
			maxAction = last
		}
	}
	// The declared id spaces bound the index allocations below; ids past them
	// mean the header and body disagree. The declared spaces may legitimately
	// exceed the largest id present (trailing ids with no implementations), so
	// they — not the scanned maxima — become the library's dimensions.
	if int(maxAction) >= nAct || int(maxGoal) >= nGoal {
		return nil, fmt.Errorf("core: corrupt snapshot: id (action %d, goal %d) outside declared spaces (%d actions, %d goals)",
			maxAction, maxGoal, nAct, nGoal)
	}
	lib := &Library{
		implGoal:   implGoal,
		implOff:    implOff,
		implActs:   implActs,
		numActions: nAct,
		numGoals:   nGoal,
	}
	lib.buildIndexes()
	return lib, nil
}
