// Package core implements the association-based goal model of
// Papadimitriou, Velegrakis and Koutrika (EDBT 2018): actions, goals, goal
// implementations, and the index structures of Section 4 (A-ids, G-ids,
// GI-A-idx, GI-G-idx, A-GI-idx plus the reverse G-GI-idx) that make the goal
// space, action space and implementation space of a user activity cheap to
// form.
//
// All hot-path structures work on dense int32 identifiers; the Interner maps
// external string names to ids at the boundary.
package core

import (
	"fmt"
	"sync"
)

// ActionID identifies an action (an item purchase, a course, a life action).
type ActionID int32

// GoalID identifies a goal (a recipe, a degree, a life goal).
type GoalID int32

// ImplID identifies one goal implementation, i.e. one (goal, action-set)
// pair in the library.
type ImplID int32

// NoAction, NoGoal and NoImpl are sentinel "absent" ids.
const (
	NoAction ActionID = -1
	NoGoal   GoalID   = -1
	NoImpl   ImplID   = -1
)

// Interner assigns dense int32 ids to string names and resolves them back.
// It implements the paper's A-ids / G-ids dictionaries. The zero value is
// ready to use. The Interner is safe for concurrent use: ids only ever grow,
// so readers of an older library snapshot keep resolving their epoch's names
// while an Engine interns new ones.
type Interner struct {
	mu     sync.RWMutex
	byName map[string]int32
	names  []string
}

// NewInterner returns an empty Interner with capacity for n names.
func NewInterner(n int) *Interner {
	return &Interner{byName: make(map[string]int32, n), names: make([]string, 0, n)}
}

// Intern returns the id for name, assigning the next dense id on first use.
func (in *Interner) Intern(name string) int32 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.byName == nil {
		in.byName = make(map[string]int32)
	}
	if id, ok := in.byName[name]; ok {
		return id
	}
	id := int32(len(in.names))
	in.byName[name] = id
	in.names = append(in.names, name)
	return id
}

// Lookup returns the id for name without assigning one. The second result
// reports whether the name was present.
func (in *Interner) Lookup(name string) (int32, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.byName[name]
	return id, ok
}

// Name returns the name for id, or "" if id is out of range.
func (in *Interner) Name(id int32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || int(id) >= len(in.names) {
		return ""
	}
	return in.names[id]
}

// Len returns the number of interned names.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}

// Names returns the interned names indexed by id. The returned slice is a
// stable full-slice view of the Interner's backing store: later Interns never
// mutate it. It must not be modified by the caller.
func (in *Interner) Names() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.names[:len(in.names):len(in.names)]
}

// Vocabulary pairs the action and goal dictionaries of a library built from
// named data.
type Vocabulary struct {
	Actions *Interner
	Goals   *Interner
}

// NewVocabulary returns an empty Vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{Actions: NewInterner(0), Goals: NewInterner(0)}
}

// ActionName resolves an ActionID, falling back to a numeric form for ids
// outside the dictionary.
func (v *Vocabulary) ActionName(a ActionID) string {
	if v != nil && v.Actions != nil {
		if s := v.Actions.Name(int32(a)); s != "" {
			return s
		}
	}
	return fmt.Sprintf("action#%d", a)
}

// GoalName resolves a GoalID, falling back to a numeric form for ids outside
// the dictionary.
func (v *Vocabulary) GoalName(g GoalID) string {
	if v != nil && v.Goals != nil {
		if s := v.Goals.Name(int32(g)); s != "" {
			return s
		}
	}
	return fmt.Sprintf("goal#%d", g)
}
