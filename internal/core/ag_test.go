package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"goalrec/internal/intset"
)

// agRowReference derives the AG-idx row of action a the slow way, from the
// A-GI postings: distinct goals ascending, with multiplicities.
func agRowReference(lib *Library, a ActionID) ([]GoalID, []int32) {
	counts := map[GoalID]int32{}
	for _, p := range lib.ImplsOfAction(a) {
		counts[lib.Goal(p)]++
	}
	var goals []GoalID
	for g := range counts {
		goals = append(goals, g)
	}
	goals = intset.FromUnsorted(goals)
	cnt := make([]int32, len(goals))
	for i, g := range goals {
		cnt[i] = counts[g]
	}
	return goals, cnt
}

func TestAGIndexPaperExample(t *testing.T) {
	lib := paperLibrary(t)
	// a1 (id 0) appears in p1 (g1), p2 (g2), p3 (g3) and p5 (g5): four
	// distinct goals, one implementation each.
	goals, cnt := lib.GoalsOfAction(0)
	if !reflect.DeepEqual(goals, []GoalID{0, 1, 2, 4}) ||
		!reflect.DeepEqual(cnt, []int32{1, 1, 1, 1}) {
		t.Fatalf("AG row of a1 = %v/%v, want [0 1 2 4]/[1 1 1 1]", goals, cnt)
	}
	if got := lib.GoalDegree(0); got != 4 {
		t.Errorf("GoalDegree(a1) = %d, want 4", got)
	}
	if got := lib.ActionGoalCount(0, 2); got != 1 {
		t.Errorf("ActionGoalCount(a1, g3) = %d, want 1", got)
	}
	if got := lib.ActionGoalCount(0, 3); got != 0 {
		t.Errorf("ActionGoalCount(a1, g4) = %d, want 0", got)
	}
}

func TestAGIndexMultiplicity(t *testing.T) {
	// A goal with several implementations containing the same action
	// collapses to one AG entry whose count is the implementation total.
	var b Builder
	for _, acts := range [][]ActionID{{0, 1}, {0, 2}, {0, 3}} {
		if _, err := b.Add(7, acts); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Add(2, []ActionID{0, 1}); err != nil {
		t.Fatal(err)
	}
	lib := b.Build()
	goals, cnt := lib.GoalsOfAction(0)
	if !reflect.DeepEqual(goals, []GoalID{2, 7}) || !reflect.DeepEqual(cnt, []int32{1, 3}) {
		t.Fatalf("AG row of a0 = %v/%v, want [2 7]/[1 3]", goals, cnt)
	}
	if got := lib.ActionGoalCount(0, 7); got != 3 {
		t.Errorf("ActionGoalCount(a0, g7) = %d, want 3", got)
	}
}

func TestAGIndexMatchesPostingsProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomLibrary(r, 1+r.Intn(80), 25, 12))
		},
	}
	f := func(lib *Library) bool {
		slotTotal := 0
		for a := ActionID(0); int(a) < lib.NumActions(); a++ {
			goals, cnt := lib.GoalsOfAction(a)
			wantGoals, wantCnt := agRowReference(lib, a)
			if len(goals) != len(wantGoals) {
				return false
			}
			for i := range goals {
				if goals[i] != wantGoals[i] || cnt[i] != wantCnt[i] || cnt[i] < 1 {
					return false
				}
				if lib.ActionGoalCount(a, goals[i]) != int(cnt[i]) {
					return false
				}
			}
			if lib.GoalDegree(a) != len(wantGoals) {
				return false
			}
			// A goal absent from the row reports zero.
			if lib.ActionGoalCount(a, GoalID(lib.NumGoals())) != 0 {
				return false
			}
		}
		for g := GoalID(0); int(g) < lib.NumGoals(); g++ {
			walk := 0
			for _, p := range lib.ImplsOfGoal(g) {
				walk += lib.ImplLen(p)
			}
			if lib.GoalWalkCost(g) != walk {
				return false
			}
			slotTotal += walk
		}
		// Every slot is covered by exactly one goal's walk.
		implTotal := 0
		for p := 0; p < lib.NumImplementations(); p++ {
			implTotal += lib.ImplLen(ImplID(p))
		}
		return slotTotal == implTotal
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGoalSpaceMatchesImplementationSpaceDerivation(t *testing.T) {
	// GoalSpace now unions AG-idx rows without materializing IS(H); it must
	// still equal the definition: the distinct goals of IS(H).
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomLibrary(r, 1+r.Intn(80), 25, 12))
			h := make([]ActionID, 1+r.Intn(6))
			for i := range h {
				h[i] = ActionID(r.Intn(30)) // may exceed the action space
			}
			v[1] = reflect.ValueOf(h)
		},
	}
	f := func(lib *Library, h []ActionID) bool {
		var want []GoalID
		for _, p := range lib.ImplementationSpace(h) {
			want = append(want, lib.Goal(p))
		}
		want = intset.FromUnsorted(want)
		return reflect.DeepEqual(lib.GoalSpace(h), want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpacesEmptyAndUnknownActivities(t *testing.T) {
	lib := paperLibrary(t)
	unknown := []ActionID{999, 1234}

	for name, h := range map[string][]ActionID{
		"empty":    nil,
		"unknown":  unknown,
		"negative": {-3},
	} {
		if got := lib.ImplementationSpace(h); got != nil {
			t.Errorf("%s: ImplementationSpace = %v, want nil", name, got)
		}
		if got := lib.GoalSpace(h); got != nil {
			t.Errorf("%s: GoalSpace = %v, want nil", name, got)
		}
		if got := lib.Candidates(h); got != nil {
			t.Errorf("%s: Candidates = %v, want nil", name, got)
		}
	}

	// Unknown ids mixed into a real activity are inert: the spaces match the
	// known-only activity exactly.
	known := []ActionID{1, 2}
	mixed := append(append([]ActionID(nil), unknown...), known...)
	if got, want := lib.GoalSpace(mixed), lib.GoalSpace(known); !reflect.DeepEqual(got, want) {
		t.Errorf("mixed GoalSpace = %v, want %v", got, want)
	}
	if got, want := lib.ImplementationSpace(mixed), lib.ImplementationSpace(known); !reflect.DeepEqual(got, want) {
		t.Errorf("mixed ImplementationSpace = %v, want %v", got, want)
	}
	// Candidates strips the activity itself — including its unknown ids.
	if got, want := lib.Candidates(mixed), lib.Candidates(known); !reflect.DeepEqual(got, want) {
		t.Errorf("mixed Candidates = %v, want %v", got, want)
	}

	// Out-of-range accessors answer empty, not panic.
	if g, c := lib.GoalsOfAction(999); g != nil || c != nil {
		t.Errorf("GoalsOfAction(999) = %v/%v, want nil", g, c)
	}
	if got := lib.GoalDegree(-1); got != 0 {
		t.Errorf("GoalDegree(-1) = %d, want 0", got)
	}
	if got := lib.GoalWalkCost(GoalID(lib.NumGoals())); got != 0 {
		t.Errorf("GoalWalkCost out of range = %d, want 0", got)
	}
}
