package core

import (
	"fmt"
	"maps"
	"sync"

	"goalrec/internal/intset"
)

// defaultCompactMin is the smallest append backlog that triggers a full
// index rebuild (compaction). Below it, snapshots extend the previous epoch
// through copy-on-write overlays in time proportional to the rows the
// appends touched, not to the library.
const defaultCompactMin = 1024

// DynamicLibrary is a mutable, concurrency-safe goal-implementation store
// with epoch-numbered snapshot semantics: writers append implementations (or
// swap the whole collection), and readers obtain immutable *Library
// snapshots carrying strictly increasing epochs.
//
// Snapshots are built incrementally. The store owns append-only
// implementation CSR arrays; every snapshot views a full-slice (len == cap)
// prefix of them, so later appends — which only ever write beyond every
// snapshot's length — can never alias memory a reader sees. The posting
// indexes (A-GI-idx, G-GI-idx, AG-idx) of the previous epoch are shared
// wholesale, with fresh merged rows overlaid for just the touched actions
// and goals. Snapshotting an append into a million-implementation library
// therefore costs the touched rows, not a full index derivation; once the
// backlog since the last flat build exceeds max(1024, flat/8), the snapshot
// compacts into a fresh flat library, keeping overlay memory bounded and
// amortizing rebuild cost over the appends that forced it.
//
// Old snapshots stay valid indefinitely and keep returning their epoch's
// results bit-identically; they are never mutated, only superseded.
type DynamicLibrary struct {
	mu sync.Mutex

	// Owned append-only implementation CSR.
	implGoal []GoalID
	implOff  []int32
	implActs []ActionID

	numActions int // id-space high-water marks over appended impls
	numGoals   int

	flatImpls int      // implementations covered by cur's flat CSR indexes
	cur       *Library // latest snapshot; nil until first use
	epoch     uint64

	// compactMin overrides the compaction threshold in tests; 0 selects
	// defaultCompactMin.
	compactMin int
}

// NewDynamicLibrary returns an empty DynamicLibrary. The zero value is also
// ready to use.
func NewDynamicLibrary() *DynamicLibrary {
	return &DynamicLibrary{}
}

func (d *DynamicLibrary) initLocked() {
	if d.cur != nil {
		return
	}
	if len(d.implOff) == 0 {
		d.implOff = append(d.implOff, 0)
	}
	d.cur = d.buildFlatLocked()
	d.flatImpls = len(d.implGoal)
}

// Add appends one implementation; it never blocks readers of previously
// obtained snapshots. The action list may be unsorted and may contain
// duplicates; it is normalized and copied.
func (d *DynamicLibrary) Add(goal GoalID, actions []ActionID) (ImplID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addLocked(goal, actions)
}

func (d *DynamicLibrary) addLocked(goal GoalID, actions []ActionID) (ImplID, error) {
	d.initLocked()
	if goal < 0 {
		return NoImpl, fmt.Errorf("%w: goal %d", ErrNegativeID, goal)
	}
	norm := intset.FromUnsorted(intset.Clone(actions))
	if len(norm) == 0 {
		return NoImpl, ErrEmptyActivity
	}
	if norm[0] < 0 {
		return NoImpl, fmt.Errorf("%w: action %d", ErrNegativeID, norm[0])
	}
	id := ImplID(len(d.implGoal))
	d.implGoal = append(d.implGoal, goal)
	d.implActs = append(d.implActs, norm...)
	d.implOff = append(d.implOff, int32(len(d.implActs)))
	if n := int(goal) + 1; n > d.numGoals {
		d.numGoals = n
	}
	if n := int(norm[len(norm)-1]) + 1; n > d.numActions {
		d.numActions = n
	}
	return id, nil
}

// AddImplementations appends a batch, stopping at the first invalid
// implementation. It returns the number added.
func (d *DynamicLibrary) AddImplementations(impls []Implementation) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, impl := range impls {
		if _, err := d.addLocked(impl.Goal, impl.Actions); err != nil {
			return i, err
		}
	}
	return len(impls), nil
}

// Len returns the number of implementations ingested so far.
func (d *DynamicLibrary) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.implGoal)
}

// SetCompactionThreshold overrides the minimum append backlog that triggers
// snapshot compaction; n <= 0 restores the default. Lower values trade
// snapshot latency for tighter overlay memory — mostly useful to exercise
// the compaction path in tests.
func (d *DynamicLibrary) SetCompactionThreshold(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.compactMin = n
}

// Epoch returns the epoch of the most recent snapshot. Appends not yet
// snapshotted do not advance it.
func (d *DynamicLibrary) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Snapshot returns an immutable Library over everything added so far. The
// result is shared between callers until the next write. After appends the
// snapshot is extended incrementally from the previous epoch — cost
// proportional to the index rows the appends touched — with a periodic flat
// compaction once the backlog warrants it.
func (d *DynamicLibrary) Snapshot() *Library {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *DynamicLibrary) snapshotLocked() *Library {
	d.initLocked()
	n := len(d.implGoal)
	if d.cur.NumImplementations() == n {
		return d.cur
	}
	d.epoch++
	min := d.compactMin
	if min <= 0 {
		min = defaultCompactMin
	}
	threshold := d.flatImpls / 8
	if threshold < min {
		threshold = min
	}
	if n-d.flatImpls >= threshold {
		d.cur = d.buildFlatLocked()
		d.flatImpls = n
	} else {
		d.cur = d.extendLocked()
	}
	return d.cur
}

// Swap replaces the store's contents with lib, which becomes the next
// epoch's snapshot. The implementation CSR is borrowed as full-slice
// (len == cap) views — the lineage's own appends reallocate before the first
// write, so memory shared with the caller (or with a memory-mapped snapshot)
// is never mutated and Swap is O(1) regardless of library size. lib itself
// is not mutated. It returns the stamped snapshot.
func (d *DynamicLibrary) Swap(lib *Library) *Library {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := lib.NumImplementations()
	d.implGoal = lib.implGoal[:n:n]
	if len(lib.implOff) >= n+1 {
		d.implOff = lib.implOff[: n+1 : n+1]
	} else {
		d.implOff = []int32{0}
	}
	slots := len(lib.implActs)
	d.implActs = lib.implActs[:slots:slots]
	d.numActions = lib.numActions
	d.numGoals = lib.numGoals
	d.epoch++
	d.cur = lib.withEpoch(d.epoch)
	// Treat the swapped-in library as the flat base for compaction purposes:
	// its own indexes (flat or overlay) serve as the prefix to extend.
	d.flatImpls = n
	return d.cur
}

// RestoreEpoch forces the lineage's epoch counter to e and restamps the
// current snapshot, so a store recovering from a persisted snapshot + WAL
// resumes exactly where the previous process stopped. Restoring backwards
// would violate the strictly-increasing epoch contract and is rejected.
func (d *DynamicLibrary) RestoreEpoch(e uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e < d.epoch {
		return fmt.Errorf("core: cannot restore epoch %d below current %d", e, d.epoch)
	}
	d.initLocked()
	d.epoch = e
	d.cur = d.cur.withEpoch(e)
	return nil
}

// buildFlatLocked derives a fully indexed (flat) library over everything
// appended so far, viewing — not copying — the owned implementation CSR.
func (d *DynamicLibrary) buildFlatLocked() *Library {
	n := len(d.implGoal)
	slots := int(d.implOff[n])
	lib := &Library{
		implGoal:   d.implGoal[:n:n],
		implOff:    d.implOff[: n+1 : n+1],
		implActs:   d.implActs[:slots:slots],
		numActions: d.numActions,
		numGoals:   d.numGoals,
		epoch:      d.epoch,
	}
	lib.buildIndexes()
	return lib
}

// extendLocked builds the next snapshot from the previous one plus the
// pending appends: the implementation CSR grows by prefix sharing, and only
// the posting rows of touched actions/goals are re-materialized into the
// copy-on-write overlay. Merged rows append the new implementation ids —
// which are strictly larger than every previous id — after the old row, so
// row contents are bit-identical to a full rebuild's.
func (d *DynamicLibrary) extendLocked() *Library {
	prev := d.cur
	lo := prev.NumImplementations()
	hi := len(d.implGoal)
	slots := int(d.implOff[hi])

	nl := &Library{
		implGoal:      d.implGoal[:hi:hi],
		implOff:       d.implOff[: hi+1 : hi+1],
		implActs:      d.implActs[:slots:slots],
		actOff:        prev.actOff,
		actPost:       prev.actPost,
		cp:            prev.cp,
		goalOff:       prev.goalOff,
		goalPost:      prev.goalPost,
		agOff:         prev.agOff,
		agGoal:        prev.agGoal,
		agCnt:         prev.agCnt,
		gaOff:         prev.gaOff,
		gaAct:         prev.gaAct,
		gaCnt:         prev.gaCnt,
		goalSlots:     prev.goalSlots,
		blkOff:        prev.blkOff,
		blkLast:       prev.blkLast,
		blkMinLen:     prev.blkMinLen,
		blkMaxLen:     prev.blkMaxLen,
		maxImplLen:    prev.maxImplLen,
		implLenSorted: prev.implLenSorted,
		bounds:        &boundAux{}, // degrees changed; suffix bounds re-derive lazily
		numActions:    d.numActions,
		numGoals:      d.numGoals,
		epoch:         d.epoch,

		ovActPost:   maps.Clone(prev.ovActPost),
		ovGoalPost:  maps.Clone(prev.ovGoalPost),
		ovAgGoal:    maps.Clone(prev.ovAgGoal),
		ovAgCnt:     maps.Clone(prev.ovAgCnt),
		ovGaAct:     maps.Clone(prev.ovGaAct),
		ovGaCnt:     maps.Clone(prev.ovGaCnt),
		ovGoalSlots: maps.Clone(prev.ovGoalSlots),
		ovBlocks:    maps.Clone(prev.ovBlocks),
	}
	if nl.ovActPost == nil {
		nl.ovActPost = make(map[ActionID][]ImplID)
		nl.ovGoalPost = make(map[GoalID][]ImplID)
		nl.ovAgGoal = make(map[ActionID][]GoalID)
		nl.ovAgCnt = make(map[ActionID][]int32)
		nl.ovGoalSlots = make(map[GoalID]int32)
	}
	if nl.ovBlocks == nil {
		nl.ovBlocks = make(map[ActionID]PostingBlocks)
	}
	if nl.ovGaAct == nil {
		nl.ovGaAct = make(map[GoalID][]ActionID)
		nl.ovGaCnt = make(map[GoalID][]int32)
	}
	prevLen := int32(0)
	if lo > 0 {
		prevLen = d.implOff[lo] - d.implOff[lo-1]
	}
	for p := lo; p < hi; p++ {
		n := d.implOff[p+1] - d.implOff[p]
		if n > nl.maxImplLen {
			nl.maxImplLen = n
		}
		if n < prevLen {
			nl.implLenSorted = false
		}
		prevLen = n
	}

	// Group the pending implementations by action and goal.
	pendAct := make(map[ActionID][]ImplID)
	pendGoal := make(map[GoalID][]ImplID)
	pendSlots := make(map[GoalID]int32)
	pendAG := make(map[ActionID]map[GoalID]int32)
	pendGA := make(map[GoalID]map[ActionID]int32)
	for p := lo; p < hi; p++ {
		id := ImplID(p)
		g := d.implGoal[p]
		acts := d.implActs[d.implOff[p]:d.implOff[p+1]]
		pendGoal[g] = append(pendGoal[g], id)
		pendSlots[g] += int32(len(acts))
		ga := pendGA[g]
		if ga == nil {
			ga = make(map[ActionID]int32)
			pendGA[g] = ga
		}
		for _, a := range acts {
			pendAct[a] = append(pendAct[a], id)
			ag := pendAG[a]
			if ag == nil {
				ag = make(map[GoalID]int32)
				pendAG[a] = ag
			}
			ag[g]++
			ga[a]++
		}
	}

	// A-GI-idx rows: old row (overlay or base CSR) followed by the new ids.
	// Each merged row's block-max metadata is rebuilt alongside it — the same
	// O(row) cost class as materializing the row — so threshold-aware scans
	// stay available on extended snapshots.
	for a, ids := range pendAct {
		old := prev.ImplsOfAction(a)
		row := make([]ImplID, 0, len(old)+len(ids))
		merged := append(append(row, old...), ids...)
		nl.ovActPost[a] = merged
		var blk PostingBlocks
		blk.Last, blk.MinLen, blk.MaxLen = nl.appendRowBlocks(merged, nil, nil, nil)
		nl.ovBlocks[a] = blk
	}

	// G-GI-idx rows and per-goal walk costs.
	for g, ids := range pendGoal {
		old := prev.ImplsOfGoal(g)
		row := make([]ImplID, 0, len(old)+len(ids))
		nl.ovGoalPost[g] = append(append(row, old...), ids...)
		nl.ovGoalSlots[g] = int32(prev.GoalWalkCost(g)) + pendSlots[g]
	}

	// AG-idx rows: sorted merge of the old (goal, count) row with the
	// pending per-goal increments.
	for a, delta := range pendAG {
		oldG, oldC := prev.GoalsOfAction(a)
		dg := make([]GoalID, 0, len(delta))
		for g := range delta {
			dg = append(dg, g)
		}
		dg = intset.FromUnsorted(dg) // map keys: distinct already, just sorts
		mg := make([]GoalID, 0, len(oldG)+len(dg))
		mc := make([]int32, 0, len(oldG)+len(dg))
		i, j := 0, 0
		for i < len(oldG) && j < len(dg) {
			switch {
			case oldG[i] < dg[j]:
				mg = append(mg, oldG[i])
				mc = append(mc, oldC[i])
				i++
			case oldG[i] > dg[j]:
				mg = append(mg, dg[j])
				mc = append(mc, delta[dg[j]])
				j++
			default:
				mg = append(mg, oldG[i])
				mc = append(mc, oldC[i]+delta[dg[j]])
				i, j = i+1, j+1
			}
		}
		for ; i < len(oldG); i++ {
			mg = append(mg, oldG[i])
			mc = append(mc, oldC[i])
		}
		for ; j < len(dg); j++ {
			mg = append(mg, dg[j])
			mc = append(mc, delta[dg[j]])
		}
		nl.ovAgGoal[a], nl.ovAgCnt[a] = mg, mc
	}

	// GA-idx rows: the transpose merge — old (action, count) row of each
	// touched goal merged with the pending per-action increments.
	for g, delta := range pendGA {
		oldA, oldC := prev.ActionsOfGoal(g)
		da := make([]ActionID, 0, len(delta))
		for a := range delta {
			da = append(da, a)
		}
		da = intset.FromUnsorted(da) // map keys: distinct already, just sorts
		ma := make([]ActionID, 0, len(oldA)+len(da))
		mc := make([]int32, 0, len(oldA)+len(da))
		i, j := 0, 0
		for i < len(oldA) && j < len(da) {
			switch {
			case oldA[i] < da[j]:
				ma = append(ma, oldA[i])
				mc = append(mc, oldC[i])
				i++
			case oldA[i] > da[j]:
				ma = append(ma, da[j])
				mc = append(mc, delta[da[j]])
				j++
			default:
				ma = append(ma, oldA[i])
				mc = append(mc, oldC[i]+delta[da[j]])
				i, j = i+1, j+1
			}
		}
		for ; i < len(oldA); i++ {
			ma = append(ma, oldA[i])
			mc = append(mc, oldC[i])
		}
		for ; j < len(da); j++ {
			ma = append(ma, da[j])
			mc = append(mc, delta[da[j]])
		}
		nl.ovGaAct[g], nl.ovGaCnt[g] = ma, mc
	}
	return nl
}
