package core

import "sync"

// DynamicLibrary is a mutable, concurrency-safe goal-implementation store
// with snapshot semantics: writers append implementations, readers obtain an
// immutable *Library snapshot whose indexes are rebuilt lazily on first read
// after a write. Rebuilds are O(total slots); the intended usage pattern is
// bursts of ingestion followed by many reads (the shape of a service that
// periodically syncs new recipes/outfits/courses).
type DynamicLibrary struct {
	mu       sync.Mutex
	builder  Builder
	snapshot *Library // nil when dirty
}

// NewDynamicLibrary returns an empty DynamicLibrary.
func NewDynamicLibrary() *DynamicLibrary {
	return &DynamicLibrary{}
}

// Add appends one implementation; it never blocks readers of previously
// obtained snapshots.
func (d *DynamicLibrary) Add(goal GoalID, actions []ActionID) (ImplID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, err := d.builder.Add(goal, actions)
	if err != nil {
		return id, err
	}
	d.snapshot = nil
	return id, nil
}

// AddImplementations appends a batch, stopping at the first invalid
// implementation. It returns the number added.
func (d *DynamicLibrary) AddImplementations(impls []Implementation) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, impl := range impls {
		if _, err := d.builder.Add(impl.Goal, impl.Actions); err != nil {
			if i > 0 {
				d.snapshot = nil
			}
			return i, err
		}
	}
	if len(impls) > 0 {
		d.snapshot = nil
	}
	return len(impls), nil
}

// Len returns the number of implementations ingested so far.
func (d *DynamicLibrary) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.builder.Len()
}

// Snapshot returns an immutable Library over everything added so far. The
// result is shared between callers until the next Add, so it must be treated
// as read-only (Library is immutable by construction). Cost: a full index
// rebuild after a write, a pointer copy otherwise.
func (d *DynamicLibrary) Snapshot() *Library {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snapshot == nil {
		d.snapshot = d.builder.Build()
	}
	return d.snapshot
}
