package core

import (
	"testing"

	"goalrec/internal/xrand"
)

func partitionTestLibrary(t *testing.T, nImpl int) *Library {
	t.Helper()
	rng := xrand.New(41)
	b := NewBuilder(nImpl, 4)
	for i := 0; i < nImpl; i++ {
		n := 1 + rng.Intn(6)
		acts := make([]ActionID, n)
		for j := range acts {
			acts[j] = ActionID(rng.Intn(40))
		}
		if _, err := b.Add(GoalID(rng.Intn(12)), acts); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return b.Build()
}

func TestPartitionRangePreservesIDSpaces(t *testing.T) {
	lib := partitionTestLibrary(t, 200)
	for _, r := range [][2]int{{0, 200}, {0, 70}, {70, 140}, {140, 200}, {50, 50}} {
		lo, hi := r[0], r[1]
		sub, err := PartitionRange(lib, lo, hi)
		if err != nil {
			t.Fatalf("PartitionRange(%d, %d): %v", lo, hi, err)
		}
		if sub.NumActions() != lib.NumActions() || sub.NumGoals() != lib.NumGoals() {
			t.Fatalf("partition [%d,%d) shrank id spaces: %d/%d actions, %d/%d goals",
				lo, hi, sub.NumActions(), lib.NumActions(), sub.NumGoals(), lib.NumGoals())
		}
		if sub.NumImplementations() != hi-lo {
			t.Fatalf("partition [%d,%d) has %d impls", lo, hi, sub.NumImplementations())
		}
		if sub.Epoch() != lib.Epoch() {
			t.Fatalf("partition epoch %d, parent %d", sub.Epoch(), lib.Epoch())
		}
	}
}

func TestPartitionRangeImplsMatchParent(t *testing.T) {
	lib := partitionTestLibrary(t, 200)
	lo, hi := 37, 158
	sub, err := PartitionRange(lib, lo, hi)
	if err != nil {
		t.Fatalf("PartitionRange: %v", err)
	}
	for p := 0; p < sub.NumImplementations(); p++ {
		gp := ImplID(lo + p)
		if sub.Goal(ImplID(p)) != lib.Goal(gp) {
			t.Fatalf("impl %d: goal %d, parent %d", p, sub.Goal(ImplID(p)), lib.Goal(gp))
		}
		got, want := sub.Actions(ImplID(p)), lib.Actions(gp)
		if len(got) != len(want) {
			t.Fatalf("impl %d: %d actions, parent %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("impl %d action %d: %d, parent %d", p, i, got[i], want[i])
			}
		}
	}
}

// The shard posting rows must be exactly the parent rows filtered to the
// range and rebased — that alignment is what lets a worker's local impl-id
// tie-break order agree with the global order after adding lo back.
func TestPartitionRangePostingsAreFilteredParentRows(t *testing.T) {
	lib := partitionTestLibrary(t, 200)
	lo, hi := 61, 144
	sub, err := PartitionRange(lib, lo, hi)
	if err != nil {
		t.Fatalf("PartitionRange: %v", err)
	}
	for a := ActionID(0); int(a) < lib.NumActions(); a++ {
		var want []ImplID
		for _, p := range lib.ImplsOfAction(a) {
			if int(p) >= lo && int(p) < hi {
				want = append(want, p-ImplID(lo))
			}
		}
		got := sub.ImplsOfAction(a)
		if len(got) != len(want) {
			t.Fatalf("action %d: %d postings, want %d", a, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("action %d posting %d: impl %d, want %d", a, i, got[i], want[i])
			}
		}
	}
	for g := GoalID(0); int(g) < lib.NumGoals(); g++ {
		var want []ImplID
		for _, p := range lib.ImplsOfGoal(g) {
			if int(p) >= lo && int(p) < hi {
				want = append(want, p-ImplID(lo))
			}
		}
		got := sub.ImplsOfGoal(g)
		if len(got) != len(want) {
			t.Fatalf("goal %d: %d postings, want %d", g, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("goal %d posting %d: impl %d, want %d", g, i, got[i], want[i])
			}
		}
	}
}

func TestPartitionRangeBounds(t *testing.T) {
	lib := partitionTestLibrary(t, 10)
	for _, r := range [][2]int{{-1, 5}, {5, 3}, {0, 11}} {
		if _, err := PartitionRange(lib, r[0], r[1]); err == nil {
			t.Fatalf("PartitionRange(%d, %d) succeeded", r[0], r[1])
		}
	}
}
