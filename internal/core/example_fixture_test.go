package core

import "testing"

// paperLibrary builds the implementation set of the paper's Example 3.2
// (the online clothing store of Figure 1): five implementations p1..p5 over
// goals g1..g5 and actions a1..a6. Ids are zero-based, so a1 is action 0 and
// g1 is goal 0.
//
// The membership matrix is reverse-engineered from the paper's Example 4.3,
// which the fixture satisfies exactly:
//
//	IS(a1) = {p1,p2,p3,p5},  GS(a1) = {g1,g2,g3,g5},  AS(a1) = {a2,...,a6}.
//
// (The Section 5.3 numbers for H = {a2,a3} are typographically damaged in
// the published text and cannot be made consistent with Example 4.3; the
// strategy tests therefore assert the values this fixture itself implies.)
func paperLibrary(t testing.TB) *Library {
	t.Helper()
	b := NewBuilder(5, 3)
	add := func(goal GoalID, actions ...ActionID) {
		t.Helper()
		if _, err := b.Add(goal, actions); err != nil {
			t.Fatalf("Add(%d, %v): %v", goal, actions, err)
		}
	}
	// p1 = (g1, {a1, a2, a3})   "meeting friends"
	add(0, 0, 1, 2)
	// p2 = (g2, {a1, a4})       "be warm"
	add(1, 0, 3)
	// p3 = (g3, {a1, a3, a5})   "going to the office"
	add(2, 0, 2, 4)
	// p4 = (g4, {a4, a6})
	add(3, 3, 5)
	// p5 = (g5, {a1, a2, a6})
	add(4, 0, 1, 5)
	return b.Build()
}

func actions(v ...ActionID) []ActionID { return v }

func goals(v ...GoalID) []GoalID { return v }

func impls(v ...ImplID) []ImplID { return v }

func equalActions(a, b []ActionID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalGoals(a, b []GoalID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalImpls(a, b []ImplID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
