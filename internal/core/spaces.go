package core

import "goalrec/internal/intset"

// This file implements the two basic operations of Section 4 — forming the
// goal space GS(A) and the action space AS(A) of an activity — plus the
// implementation space IS(A) both rely on, and the per-implementation
// completeness and closeness measures of Section 5.1.

// ImplementationSpace returns the sorted, deduplicated ids of every
// implementation containing at least one action of activity: IS(activity).
// The activity need not be sorted.
func (l *Library) ImplementationSpace(activity []ActionID) []ImplID {
	switch len(activity) {
	case 0:
		return nil
	case 1:
		return intset.Clone(l.ImplsOfAction(activity[0]))
	}
	total := 0
	for _, a := range activity {
		total += l.ActionDegree(a)
	}
	if total == 0 {
		return nil
	}
	out := make([]ImplID, 0, total)
	for _, a := range activity {
		out = append(out, l.ImplsOfAction(a)...)
	}
	return intset.FromUnsorted(out)
}

// GoalSpace returns the sorted, deduplicated goal ids associated with the
// activity through at least one implementation: GS(activity)
// (Definition 4.1 extended to activities). It unions the per-action AG-idx
// rows directly, skipping the IS(activity) materialization entirely.
func (l *Library) GoalSpace(activity []ActionID) []GoalID {
	switch len(activity) {
	case 0:
		return nil
	case 1:
		goals, _ := l.GoalsOfAction(activity[0])
		if len(goals) == 0 {
			return nil
		}
		return append([]GoalID(nil), goals...)
	}
	total := 0
	for _, a := range activity {
		total += l.GoalDegree(a)
	}
	if total == 0 {
		return nil
	}
	out := make([]GoalID, 0, total)
	for _, a := range activity {
		goals, _ := l.GoalsOfAction(a)
		out = append(out, goals...)
	}
	return intset.FromUnsorted(out)
}

// ActionSpace returns the sorted, deduplicated actions that co-participate
// with the activity's actions in some implementation: AS(activity)
// (Definition 4.2 extended to activities). Following the definition, an
// action of the activity itself appears in the result only when it co-occurs
// with a *different* action of the activity; use Candidates to strip the
// activity entirely.
func (l *Library) ActionSpace(activity []ActionID) []ActionID {
	h := intset.FromUnsorted(intset.Clone(activity))
	var out []ActionID
	for _, p := range l.ImplementationSpace(h) {
		acts := l.implActions(p)
		overlap := intset.IntersectionLen(acts, h)
		for _, a := range acts {
			if intset.Contains(h, a) {
				// An activity action belongs to AS(H) only when it
				// co-participates with a *different* activity action
				// (Definition 4.2 excludes the pairing of a with itself).
				if overlap >= 2 {
					out = append(out, a)
				}
				continue
			}
			out = append(out, a)
		}
	}
	return intset.FromUnsorted(out)
}

// Candidates returns AS(activity) − activity: the candidate actions the
// strategies rank (the user has not performed them yet).
func (l *Library) Candidates(activity []ActionID) []ActionID {
	h := intset.FromUnsorted(intset.Clone(activity))
	space := l.ImplementationSpace(h)
	if len(space) == 0 {
		return nil
	}
	// Dense dedup: stamp each action on first sight and sort the distinct
	// survivors, instead of sorting the full slot stream with duplicates
	// (at high connectivity the stream is an order of magnitude larger than
	// the action space). The sparse append+sort path remains for libraries
	// whose action id space is too large to stamp per query.
	const stampLimit = 1 << 22
	var out []ActionID
	if l.numActions <= stampLimit {
		seen := make([]bool, l.numActions)
		for _, p := range space {
			for _, a := range l.implActions(p) {
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
		}
	} else {
		for _, p := range space {
			out = append(out, l.implActions(p)...)
		}
	}
	out = intset.FromUnsorted(out)
	return intset.Difference(nil, out, h)
}

// Completeness returns completeness(g, A_p, H) = |A_p ∩ H| / |A_p|
// (Equation 3): the fraction of implementation p's actions already performed.
// H must be sorted.
func (l *Library) Completeness(p ImplID, sortedH []ActionID) float64 {
	acts := l.implActions(p)
	return float64(intset.IntersectionLen(acts, sortedH)) / float64(len(acts))
}

// Closeness returns closeness(g, A_p, H) = 1 / |A_p − H| (Equation 4): the
// inverse of the number of actions still missing. A fully covered
// implementation has infinite closeness; this function returns +Inf-free
// semantics by mapping it to |A_p|+1 (strictly larger than any partial
// closeness), keeping sort keys finite. H must be sorted.
func (l *Library) Closeness(p ImplID, sortedH []ActionID) float64 {
	missing := intset.DifferenceLen(l.implActions(p), sortedH)
	if missing == 0 {
		return float64(l.ImplLen(p) + 1)
	}
	return 1 / float64(missing)
}

// CompletenessWith returns the completeness of implementation p after the
// user additionally performs extra (both slices sorted): the usefulness
// measure of Section 6.1 C.1.3.
func (l *Library) CompletenessWith(p ImplID, sortedH, sortedExtra []ActionID) float64 {
	acts := l.implActions(p)
	n := intset.IntersectionLen(acts, sortedH)
	// Count extra's contribution only where it is not already in H.
	for _, a := range sortedExtra {
		if intset.Contains(acts, a) && !intset.Contains(sortedH, a) {
			n++
		}
	}
	return float64(n) / float64(len(acts))
}

// GoalCompleteness returns the best completeness across the implementations
// of goal g with respect to union of sortedH and sortedExtra: a goal counts
// as advanced by its closest implementation.
func (l *Library) GoalCompleteness(g GoalID, sortedH, sortedExtra []ActionID) float64 {
	best := 0.0
	for _, p := range l.ImplsOfGoal(g) {
		if c := l.CompletenessWith(p, sortedH, sortedExtra); c > best {
			best = c
		}
	}
	return best
}
