package core

// This file provides the posting-row accumulation primitives behind the
// Focus/Breadth counter kernel (see internal/strategy): one pass over the
// A-GI posting rows of an activity's actions computes |A_p ∩ H| for every
// implementation of IS(H) in a flat counter array, with no per-
// implementation set intersections and no materialized, sorted IS(H).

// OverlapStream returns Σ_{a∈H} |IS(a)|: the exact number of counter
// increments a full overlap accumulation over sortedH performs. Strategies
// use it to decide whether sharding the kernel is worth the goroutine
// overhead before doing any work.
func (l *Library) OverlapStream(sortedH []ActionID) int {
	total := 0
	for _, a := range sortedH {
		total += l.ActionDegree(a)
	}
	return total
}

// AccumulateOverlapRow adds one A-GI posting row (or any slice of one) into
// a flat per-implementation counter array: cnt[p]++ for every p in row,
// appending implementations to touched on first touch. After every row of
// an activity H has been accumulated, cnt[p] == |A_p ∩ H| for each p in the
// returned touched list, which is IS(H) in first-touch order (not sorted).
//
// cnt must be zero over the ids the rows cover; the caller re-zeroes the
// touched entries after use so the array can be pooled across queries.
func AccumulateOverlapRow(row []ImplID, cnt []int32, touched []ImplID) []ImplID {
	for _, p := range row {
		if cnt[p] == 0 {
			touched = append(touched, p)
		}
		cnt[p]++
	}
	return touched
}

// ImplsOfActionRange returns the sub-row of IS(a) whose implementation ids
// lie in [lo, hi), by binary search over the sorted posting row. Sharded
// kernel workers use it to split one shared counter array into disjoint
// implementation-id ranges: every worker accumulates only the postings that
// fall inside its range, so no two workers ever write the same counter.
// Over block-compressed postings the overlapping blocks are decoded into a
// fresh slice; hot paths pass a pooled buffer to PostingRowRange instead.
func (l *Library) ImplsOfActionRange(a ActionID, lo, hi ImplID) []ImplID {
	row, _ := l.PostingRowRange(a, lo, hi, nil)
	return row
}
