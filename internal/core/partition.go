package core

import "fmt"

// PartitionRange builds a flat sub-library holding the implementations
// [lo, hi) of l, re-numbered to local ids 0..hi-lo-1. Local ids preserve the
// relative order of the parent ids, so global ordering is recovered by adding
// lo back (cluster workers report lo+local as the global implementation id).
//
// The action and goal id spaces are NOT shrunk: the partition keeps the
// parent's NumActions/NumGoals so that id-based bounds checks, goal-space
// unions and |H|-dependent scores (the Union breadth weighting) behave
// exactly as they do on the full library. Actions and goals that only occur
// outside [lo, hi) simply have empty posting rows.
//
// The partition is built through the public accessors, so it works on any
// library shape — flat, extended (overlay) or block-compressed — and always
// yields a flat, self-contained library that shares no storage with l. The
// result carries l's epoch so epoch-keyed caches and cluster swap validation
// can tell which lineage snapshot it was cut from.
func PartitionRange(l *Library, lo, hi int) (*Library, error) {
	n := l.NumImplementations()
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("core: partition range [%d, %d) outside library of %d implementations", lo, hi, n)
	}
	slots := 0
	for p := lo; p < hi; p++ {
		slots += l.ImplLen(ImplID(p))
	}
	sub := &Library{
		implGoal:   make([]GoalID, 0, hi-lo),
		implOff:    make([]int32, 1, hi-lo+1),
		implActs:   make([]ActionID, 0, slots),
		numActions: l.numActions,
		numGoals:   l.numGoals,
	}
	for p := lo; p < hi; p++ {
		sub.implGoal = append(sub.implGoal, l.Goal(ImplID(p)))
		sub.implActs = append(sub.implActs, l.Actions(ImplID(p))...)
		sub.implOff = append(sub.implOff, int32(len(sub.implActs)))
	}
	sub.buildIndexes()
	sub.epoch = l.epoch
	return sub, nil
}
