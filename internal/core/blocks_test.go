package core

import (
	"math/rand"
	"testing"
)

// checkBlocks verifies every action's block metadata against a brute-force
// derivation from the posting row and the implementation lengths.
func checkBlocks(t *testing.T, lib *Library) {
	t.Helper()
	maxLen := 0
	for p := 0; p < lib.NumImplementations(); p++ {
		if n := lib.ImplLen(ImplID(p)); n > maxLen {
			maxLen = n
		}
	}
	if got := lib.MaxImplLen(); got != maxLen {
		t.Fatalf("MaxImplLen = %d, want %d", got, maxLen)
	}
	for a := 0; a < lib.NumActions(); a++ {
		row := lib.ImplsOfAction(ActionID(a))
		blk := lib.ActionPostingBlocks(ActionID(a))
		wantBlocks := (len(row) + PostingBlockEntries - 1) / PostingBlockEntries
		if blk.NumBlocks() != wantBlocks {
			t.Fatalf("action %d: NumBlocks = %d, want %d (row %d)", a, blk.NumBlocks(), wantBlocks, len(row))
		}
		for j := 0; j < wantBlocks; j++ {
			lo := j * PostingBlockEntries
			hi := lo + PostingBlockEntries
			if hi > len(row) {
				hi = len(row)
			}
			mn, mx := int32(1)<<30, int32(0)
			for _, p := range row[lo:hi] {
				n := int32(lib.ImplLen(p))
				if n < mn {
					mn = n
				}
				if n > mx {
					mx = n
				}
			}
			if blk.Last[j] != row[hi-1] || blk.MinLen[j] != mn || blk.MaxLen[j] != mx {
				t.Fatalf("action %d block %d: got (last %d, min %d, max %d), want (%d, %d, %d)",
					a, j, blk.Last[j], blk.MinLen[j], blk.MaxLen[j], row[hi-1], mn, mx)
			}
		}
	}
	for a := 0; a <= lib.NumActions(); a++ {
		want := 0
		for b := a; b < lib.NumActions(); b++ {
			if d := lib.ActionDegree(ActionID(b)); d > want {
				want = d
			}
		}
		if got := lib.ActionDegreeSuffixMax(ActionID(a)); got != want {
			t.Fatalf("ActionDegreeSuffixMax(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestPostingBlocksBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		// Small action spaces force multi-block rows on larger libraries.
		checkBlocks(t, randomLibrary(r, 1+r.Intn(600), 1+r.Intn(8), 10))
	}
	checkBlocks(t, (&Builder{}).Build()) // empty library
}

func TestPostingBlocksOnDynamicSnapshots(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := NewDynamicLibrary()
	d.SetCompactionThreshold(1 << 30) // force the extend (overlay) path
	for round := 0; round < 6; round++ {
		for i := 0; i < 120; i++ {
			size := 1 + r.Intn(5)
			acts := make([]ActionID, size)
			for j := range acts {
				acts[j] = ActionID(r.Intn(6))
			}
			if _, err := d.Add(GoalID(r.Intn(10)), acts); err != nil {
				t.Fatal(err)
			}
		}
		checkBlocks(t, d.Snapshot())
	}
}
