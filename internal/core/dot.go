package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the association-based goal model (the paper's Figure 2)
// in Graphviz DOT form: every implementation is a box node labelled with its
// goal, connected to the ellipse nodes of the actions it contains. maxImpls
// caps the rendered implementations (≤ 0 renders everything); large
// libraries should cap, Graphviz does not enjoy 56K hyperedges.
func WriteDOT(w io.Writer, l *Library, vocab *Vocabulary, maxImpls int) error {
	bw := bufio.NewWriter(w)
	n := l.NumImplementations()
	if maxImpls > 0 && n > maxImpls {
		n = maxImpls
	}
	if _, err := fmt.Fprintln(bw, "graph goalmodel {"); err != nil {
		return err
	}
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [fontname=\"Helvetica\"];")

	seenAction := make(map[ActionID]bool)
	for p := 0; p < n; p++ {
		id := ImplID(p)
		goal := vocab.GoalName(l.Goal(id))
		fmt.Fprintf(bw, "  impl%d [shape=box, style=filled, fillcolor=lightyellow, label=%q];\n",
			p, fmt.Sprintf("p%d: %s", p+1, goal))
		for _, a := range l.Actions(id) {
			if !seenAction[a] {
				seenAction[a] = true
				fmt.Fprintf(bw, "  act%d [shape=ellipse, label=%q];\n", a, vocab.ActionName(a))
			}
			fmt.Fprintf(bw, "  impl%d -- act%d;\n", p, a)
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}

// DOTString is a convenience wrapper returning the DOT text.
func DOTString(l *Library, vocab *Vocabulary, maxImpls int) string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = WriteDOT(&b, l, vocab, maxImpls)
	return b.String()
}
