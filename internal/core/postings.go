package core

import (
	"slices"
	"sort"
)

// This file is the access surface over block-compressed A-GI postings. A
// snapshot opened with compressed postings keeps actOff (row lengths) and the
// block-max metadata as plain arrays but replaces actPost with a varint delta
// blob (postenc.go); every accessor below resolves a row either as a zero-
// copy view (flat arrays, overlay rows) or by decoding exactly the blocks it
// needs into a caller-owned buffer. The scan kernels route all hot-path row
// reads through PostingRow/PostingRowRange/PostingRowCursor so the raw path
// stays zero-cost and the compressed path decodes lazily.

// compressedPostings holds the block-compressed A-GI postings of a snapshot-
// loaded library. blobOff[g]..blobOff[g+1] delimit the bytes of global block
// g (indexed exactly like blkLast), so a block decodes independently given
// the previous block's Last value.
type compressedPostings struct {
	id      uint64   // process-unique source id for the block cache; 0 = uncacheable
	blobOff []uint64 // per global block, len total blocks + 1
	blob    []byte
}

// PostingsCompressed reports whether the A-GI posting rows of this library's
// base epoch are block-compressed (snapshot-loaded with compression). Overlay
// rows of extended snapshots are always plain.
func (l *Library) PostingsCompressed() bool { return l.cp != nil }

// blockLen returns the entry count of local block j of a row of n entries.
func blockLen(n, j int) int {
	c := n - j*PostingBlockEntries
	if c > PostingBlockEntries {
		c = PostingBlockEntries
	}
	return c
}

// decodeRowAppend appends the full decoded posting row of action a to dst.
// The caller has already resolved overlays and bounds: a must have a base-
// epoch compressed row.
func (l *Library) decodeRowAppend(a ActionID, dst []ImplID) []ImplID {
	n := int(l.actOff[a+1] - l.actOff[a])
	bLo, bHi := int(l.blkOff[a]), int(l.blkOff[a+1])
	dst = slices.Grow(dst, n)
	prev := ImplID(-1)
	bc := activeBlockCache()
	for g := bLo; g < bHi; g++ {
		if blk := l.cachedBlock(bc, g, prev, blockLen(n, g-bLo)); blk != nil {
			dst = append(dst, blk...)
		} else {
			blob := l.cp.blob[l.cp.blobOff[g]:l.cp.blobOff[g+1]]
			dst = decodeBlockAppend(blob, prev, blockLen(n, g-bLo), dst)
		}
		prev = l.blkLast[g]
	}
	return dst
}

// subRange returns the sub-slice of the sorted row with ids in [lo, hi).
func subRange(row []ImplID, lo, hi ImplID) []ImplID {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= lo })
	j := i + sort.Search(len(row)-i, func(j int) bool { return row[i+j] >= hi })
	return row[i:j]
}

// rawRow resolves action a to an uncompressed row view when one exists
// (overlay row or flat base array). The second result is false when the row
// exists only in compressed form.
func (l *Library) rawRow(a ActionID) ([]ImplID, bool) {
	if a < 0 || int(a) >= l.numActions {
		return nil, true
	}
	if l.ovActPost != nil {
		if row, ok := l.ovActPost[a]; ok {
			return row, true
		}
	}
	if int(a)+1 >= len(l.actOff) {
		return nil, true
	}
	if l.cp != nil {
		return nil, false
	}
	return l.actPost[l.actOff[a]:l.actOff[a+1]], true
}

// PostingRow returns the full posting row of action a. For uncompressed rows
// the result is a zero-copy view and buf is returned unchanged; for
// compressed rows the result aliases buf (reset and grown as needed). The
// returned row must be treated as read-only and is valid until buf's next
// reuse; callers pool buf across queries to keep the decode allocation-free.
func (l *Library) PostingRow(a ActionID, buf []ImplID) (row, outBuf []ImplID) {
	if r, ok := l.rawRow(a); ok {
		return r, buf
	}
	buf = l.decodeRowAppend(a, buf[:0])
	return buf, buf
}

// PostingRowRange returns the sub-row of IS(a) with ids in [lo, hi) under the
// same view-or-buffer contract as PostingRow. For compressed rows only the
// blocks overlapping [lo, hi) are decoded, located through the block-max
// Last array.
func (l *Library) PostingRowRange(a ActionID, lo, hi ImplID, buf []ImplID) (row, outBuf []ImplID) {
	if r, ok := l.rawRow(a); ok {
		return subRange(r, lo, hi), buf
	}
	if hi <= lo {
		return nil, buf
	}
	n := int(l.actOff[a+1] - l.actOff[a])
	bLo, bHi := int(l.blkOff[a]), int(l.blkOff[a+1])
	last := l.blkLast[bLo:bHi]
	// First block that can contain an id ≥ lo.
	j := sort.Search(len(last), func(i int) bool { return last[i] >= lo })
	buf = buf[:0]
	if rem := (len(last) - j) * PostingBlockEntries; rem > 0 {
		if rem > n {
			rem = n
		}
		buf = slices.Grow(buf, rem)
	}
	bc := activeBlockCache()
	for ; j < len(last); j++ {
		prev := ImplID(-1)
		if j > 0 {
			prev = last[j-1]
		}
		if prev+1 >= hi {
			break // block's smallest id (> prev) is already ≥ hi
		}
		if blk := l.cachedBlock(bc, bLo+j, prev, blockLen(n, j)); blk != nil {
			buf = append(buf, blk...)
			continue
		}
		blob := l.cp.blob[l.cp.blobOff[bLo+j]:l.cp.blobOff[bLo+j+1]]
		buf = decodeBlockAppend(blob, prev, blockLen(n, j), buf)
	}
	return subRange(buf, lo, hi), buf
}

// PostingRowCursor is a lazily decoding cursor over one A-GI posting row,
// with absolute positions aligned to the row's block-max metadata. Over an
// uncompressed row every access is a direct array read; over a compressed row
// the cursor holds at most one decoded block, and AtLeast answers monotone
// threshold probes from the block metadata alone whenever it can — so a scan
// that skips a block never decodes it. A cursor is single-goroutine state.
type PostingRowCursor struct {
	raw  []ImplID // non-nil (or n == 0): uncompressed row view
	l    *Library
	last []ImplID // block Last views of the row (compressed only)
	base int      // global block index of the row's block 0
	n    int      // row length
	cur  int      // local block index held in view, -1 when none
	view []ImplID // current decoded block: buf, or a shared cache entry
	buf  []ImplID // cursor-owned decode scratch
}

// PostingRowCursor returns a cursor over the posting row of action a.
func (l *Library) PostingRowCursor(a ActionID) PostingRowCursor {
	if r, ok := l.rawRow(a); ok {
		return PostingRowCursor{raw: r, n: len(r)}
	}
	n := int(l.actOff[a+1] - l.actOff[a])
	bLo, bHi := int(l.blkOff[a]), int(l.blkOff[a+1])
	return PostingRowCursor{l: l, last: l.blkLast[bLo:bHi], base: bLo, n: n, cur: -1}
}

// Len returns the row length.
func (c *PostingRowCursor) Len() int { return c.n }

func (c *PostingRowCursor) ensure(j int) {
	if c.cur == j {
		return
	}
	prev := ImplID(-1)
	if j > 0 {
		prev = c.last[j-1]
	}
	if blk := c.l.cachedBlock(activeBlockCache(), c.base+j, prev, blockLen(c.n, j)); blk != nil {
		c.view = blk
		c.cur = j
		return
	}
	cp := c.l.cp
	blob := cp.blob[cp.blobOff[c.base+j]:cp.blobOff[c.base+j+1]]
	c.buf = decodeBlockAppend(blob, prev, blockLen(c.n, j), c.buf[:0])
	c.view = c.buf
	c.cur = j
}

// At returns row[i], decoding i's block if needed.
func (c *PostingRowCursor) At(i int) ImplID {
	if c.raw != nil {
		return c.raw[i]
	}
	j := i / PostingBlockEntries
	c.ensure(j)
	return c.view[i-j*PostingBlockEntries]
}

// AtLeast reports row[i] >= t. For compressed rows it answers from the block
// Last values whenever they decide the comparison — in particular for every
// i at a block boundary during a monotone forward scan — so blocks the caller
// goes on to skip are never decoded.
func (c *PostingRowCursor) AtLeast(i int, t ImplID) bool {
	if c.raw != nil {
		return c.raw[i] >= t
	}
	j := i / PostingBlockEntries
	if c.last[j] < t {
		return false // row[i] ≤ Last[j] < t
	}
	if i == j*PostingBlockEntries {
		prev := ImplID(-1)
		if j > 0 {
			prev = c.last[j-1]
		}
		if prev+1 >= t {
			return true // row[i] > prev ≥ t−1
		}
	}
	c.ensure(j)
	return c.view[i-j*PostingBlockEntries] >= t
}

// Slice returns row[lo:hi] as a view. For compressed rows [lo, hi) must fall
// within a single block — the granularity at which the pruned scans
// accumulate — so the slice is served from the one decoded block.
func (c *PostingRowCursor) Slice(lo, hi int) []ImplID {
	if c.raw != nil {
		return c.raw[lo:hi]
	}
	if lo >= hi {
		return nil
	}
	j := lo / PostingBlockEntries
	c.ensure(j)
	off := j * PostingBlockEntries
	return c.view[lo-off : hi-off]
}

// Search returns the first index in [lo, hi) with row[index] >= t, or hi if
// none. For compressed rows the block to probe is located through the Last
// values, so at most one block is decoded.
func (c *PostingRowCursor) Search(lo, hi int, t ImplID) int {
	if c.raw != nil {
		return lo + sort.Search(hi-lo, func(k int) bool { return c.raw[lo+k] >= t })
	}
	if lo >= hi {
		return hi
	}
	jLo, jHi := lo/PostingBlockEntries, (hi-1)/PostingBlockEntries
	j := jLo + sort.Search(jHi+1-jLo, func(k int) bool { return c.last[jLo+k] >= t })
	if j > jHi {
		return hi
	}
	off := j * PostingBlockEntries
	if j > jLo && c.last[j-1]+1 >= t {
		// The block's first entry already clears t; no decode needed.
		return off
	}
	c.ensure(j)
	s, e := lo, hi
	if off > s {
		s = off
	}
	if end := off + len(c.view); end < e {
		e = end
	}
	idx := s + sort.Search(e-s, func(k int) bool { return c.view[s-off+k] >= t })
	if idx == e && e < hi {
		// Every entry of block j below hi is < t; by choice of j the match
		// (if any) is in this block, so none exists in [lo, hi).
		return hi
	}
	return idx
}
