package core

import "sync/atomic"

// Paging hints for snapshot mappings. A snapshot's sections fall into two
// access classes: the posting payloads (A-GI rows, the compressed blob, the
// GI column, per-implementation action lists) are probed at random by
// queries, while the CSR offset arrays and block metadata are touched by
// essentially every request. On open we advise the kernel accordingly —
// MADV_RANDOM on the payloads (no wasted readahead when the working set
// exceeds RAM) and MADV_WILLNEED on the small navigation structures (header,
// section table, block metadata — paged in eagerly so the first queries don't
// fault through them one page at a time). WILLNEED is capped to small spans
// (adviseWillNeedMax): its page walk would otherwise dominate open latency.
// Hints are best-effort and Linux-only; see madvise_linux.go.

// Advice classes passed to the per-OS osMadvise.
const (
	adviseRandom = iota + 1
	adviseWillNeed
)

// adviseWillNeedMax bounds the span MADV_WILLNEED is issued for. The syscall
// walks its range page by page, so hinting a multi-megabyte offsets section
// costs hundreds of microseconds at open — more than the whole mmap+validate
// path. Small navigation structures (header, section table, block metadata)
// get the eager hint; anything larger is left to default readahead, and
// callers who want the full image resident use Warmup.
const adviseWillNeedMax = 256 << 10

// madviseDisabled gates the open-time hints; zero value = enabled.
var madviseDisabled atomic.Bool

// SetSnapshotMadvise enables or disables paging hints on snapshot open
// (enabled by default; `goalrecd -madvise=false`).
func SetSnapshotMadvise(on bool) { madviseDisabled.Store(!on) }

// adviseAsync runs advise off the open path. The hints are a dozen madvise
// syscalls plus the VMA splits they force — tens of microseconds, which would
// dominate an mmap open that is otherwise O(#sections). The snapshot is fully
// serviceable before the hints land (they only shape future paging), so open
// returns immediately and Close waits via adviseWG before unmapping.
func (s *Snapshot) adviseAsync() {
	if madviseDisabled.Load() || len(s.data) == 0 {
		return
	}
	s.adviseWG.Add(1)
	go func() {
		defer s.adviseWG.Done()
		s.advise()
	}()
}

// advise issues per-section paging hints over the snapshot's mapping. Only
// meaningful for real file mappings; OpenSnapshotBytes callers with heap
// images never reach it.
func (s *Snapshot) advise() {
	if madviseDisabled.Load() || len(s.data) == 0 {
		return
	}
	secs, _, err := snapshotSections(s.data)
	if err != nil {
		return
	}
	// Header + section table: needed immediately.
	madviseSpan(s.data, 0, uint64(snapHeaderSize+snapSectSize*len(secs)), adviseWillNeed)
	for id, sec := range secs {
		n := sec.count * uint64(sec.elem)
		switch id {
		case secActPost, secPostBlob, secGoalPost, secImplActs, secImplGoal,
			secVocActStr, secVocGoalStr:
			madviseSpan(s.data, sec.off, n, adviseRandom)
		default:
			if n <= adviseWillNeedMax {
				madviseSpan(s.data, sec.off, n, adviseWillNeed)
			}
		}
	}
}

// warmupSink defeats dead-code elimination of the Warmup read loop.
var warmupSink atomic.Uint32

// Warmup faults the whole snapshot image into the page cache by touching one
// byte per page, front to back, and returns the number of bytes spanned. An
// optional alternative to demand paging when cold-start latency matters more
// than start-up time.
func (s *Snapshot) Warmup() int64 {
	const page = 4096
	var sum byte
	for i := 0; i < len(s.data); i += page {
		sum += s.data[i]
	}
	if len(s.data) > 0 {
		sum += s.data[len(s.data)-1]
	}
	warmupSink.Add(uint32(sum))
	return int64(len(s.data))
}
