package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDeduplicateExact(t *testing.T) {
	var b Builder
	mustAdd(t, &b, 0, actions(0, 1, 2))
	mustAdd(t, &b, 0, actions(2, 1, 0)) // exact duplicate after normalization
	mustAdd(t, &b, 1, actions(0, 1, 2)) // same set, different goal: kept
	mustAdd(t, &b, 0, actions(0, 1))    // subset, not exact
	lib := b.Build()

	out, stats := Deduplicate(lib, 1)
	if stats.Kept != 3 || stats.ExactDuplicates != 1 || stats.NearDuplicates != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if out.NumImplementations() != 3 {
		t.Errorf("output size = %d", out.NumImplementations())
	}
	// Different-goal twin survived.
	if len(out.ImplsOfGoal(1)) != 1 {
		t.Error("cross-goal implementation lost")
	}
}

func TestDeduplicateNear(t *testing.T) {
	var b Builder
	mustAdd(t, &b, 0, actions(0, 1, 2, 3))
	mustAdd(t, &b, 0, actions(0, 1, 2, 4)) // Jaccard 3/5 = 0.6
	mustAdd(t, &b, 0, actions(7, 8))       // disjoint: kept
	lib := b.Build()

	out, stats := Deduplicate(lib, 0.5)
	if stats.Kept != 2 || stats.NearDuplicates != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if out.NumImplementations() != 2 {
		t.Errorf("output size = %d", out.NumImplementations())
	}
	// At a stricter threshold the near-duplicate survives.
	out2, stats2 := Deduplicate(lib, 0.7)
	if stats2.Kept != 3 || out2.NumImplementations() != 3 {
		t.Errorf("strict threshold: %+v", stats2)
	}
}

func TestDeduplicateThresholdFallback(t *testing.T) {
	var b Builder
	mustAdd(t, &b, 0, actions(0, 1))
	mustAdd(t, &b, 0, actions(0, 2)) // Jaccard 1/3
	lib := b.Build()
	// Out-of-range thresholds fall back to exact-only.
	for _, thr := range []float64{0, -1, 2} {
		out, stats := Deduplicate(lib, thr)
		if out.NumImplementations() != 2 || stats.Kept != 2 {
			t.Errorf("threshold %v: %+v", thr, stats)
		}
	}
}

func TestDeduplicateProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomLibrary(r, 1+r.Intn(80), 15, 8))
			v[1] = reflect.ValueOf(0.3 + 0.7*r.Float64())
		},
	}
	f := func(lib *Library, thr float64) bool {
		once, s1 := Deduplicate(lib, thr)
		twice, s2 := Deduplicate(once, thr)
		// Idempotence: a second pass removes nothing.
		if s2.ExactDuplicates != 0 || s2.NearDuplicates != 0 ||
			twice.NumImplementations() != once.NumImplementations() {
			return false
		}
		// Counts add up.
		if s1.Kept+s1.ExactDuplicates+s1.NearDuplicates != lib.NumImplementations() {
			return false
		}
		// Monotonicity: a laxer threshold keeps no more implementations.
		laxer, _ := Deduplicate(lib, thr*0.8)
		return laxer.NumImplementations() <= once.NumImplementations()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeduplicate(b *testing.B) {
	r := rand.New(rand.NewSource(33))
	lib := randomLibrary(r, 5000, 400, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Deduplicate(lib, 0.8)
	}
}

func TestDeduplicatePreservesSemantics(t *testing.T) {
	// Exact-only deduplication must not change any goal/action space.
	r := rand.New(rand.NewSource(21))
	lib := randomLibrary(r, 120, 25, 12)
	out, _ := Deduplicate(lib, 1)
	for a := ActionID(0); int(a) < lib.NumActions(); a++ {
		gsIn := lib.GoalSpace(actions(a))
		gsOut := out.GoalSpace(actions(a))
		if !equalGoals(gsIn, gsOut) {
			t.Fatalf("goal space of a%d changed: %v -> %v", a, gsIn, gsOut)
		}
		asIn := lib.ActionSpace(actions(a))
		asOut := out.ActionSpace(actions(a))
		if !equalActions(asIn, asOut) {
			t.Fatalf("action space of a%d changed", a)
		}
	}
}
