package core

import (
	"bytes"
	"strings"
	"testing"
)

func namedFixture(t *testing.T) (*Library, *Vocabulary) {
	t.Helper()
	vocab := NewVocabulary()
	var b Builder
	add := func(goal string, actions ...string) {
		t.Helper()
		ids := make([]ActionID, len(actions))
		for i, a := range actions {
			ids[i] = ActionID(vocab.Actions.Intern(a))
		}
		if _, err := b.Add(GoalID(vocab.Goals.Intern(goal)), ids); err != nil {
			t.Fatal(err)
		}
	}
	add("olivier salad", "potatoes", "carrots", "pickles")
	add("mashed potatoes", "potatoes", "nutmeg")
	return b.Build(), vocab
}

func TestNamedBinaryRoundTrip(t *testing.T) {
	lib, vocab := namedFixture(t)
	var buf bytes.Buffer
	if err := WriteNamedBinary(&buf, lib, vocab); err != nil {
		t.Fatal(err)
	}
	lib2, vocab2, err := ReadNamedBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lib2.NumImplementations() != lib.NumImplementations() {
		t.Fatalf("implementation count changed")
	}
	for p := 0; p < lib.NumImplementations(); p++ {
		if vocab2.GoalName(lib2.Goal(ImplID(p))) != vocab.GoalName(lib.Goal(ImplID(p))) {
			t.Errorf("impl %d goal name changed", p)
		}
	}
	id, ok := vocab2.Actions.Lookup("pickles")
	if !ok {
		t.Fatal("pickles lost")
	}
	if got, _ := vocab.Actions.Lookup("pickles"); got != id {
		t.Errorf("pickles id moved: %d != %d", id, got)
	}
}

func TestNamedBinaryRejectsCorruption(t *testing.T) {
	lib, vocab := namedFixture(t)
	var buf bytes.Buffer
	if err := WriteNamedBinary(&buf, lib, vocab); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, _, err := ReadNamedBinary(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("truncated vocab accepted")
	}
	// Missing vocab section entirely.
	var libOnly bytes.Buffer
	if err := WriteBinary(&libOnly, lib); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadNamedBinary(&libOnly); err == nil {
		t.Error("library without vocab accepted")
	}
	// Vocabulary smaller than the id space.
	small := NewVocabulary()
	small.Actions.Intern("only-one")
	small.Goals.Intern("g")
	var mismatched bytes.Buffer
	if err := WriteNamedBinary(&mismatched, lib, small); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadNamedBinary(&mismatched); err == nil {
		t.Error("undersized vocabulary accepted")
	}
}

func TestNamedBinaryRejectsOversizedName(t *testing.T) {
	lib, vocab := namedFixture(t)
	vocab.Actions.Intern(strings.Repeat("x", maxNameLen+1))
	var buf bytes.Buffer
	if err := WriteNamedBinary(&buf, lib, vocab); err == nil {
		t.Error("oversized name accepted on write")
	}
}
