package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// snapTestLibrary builds a deterministic synthetic library with skewed action
// frequencies, enough rows to cross several posting blocks.
func snapTestLibrary(t testing.TB, nImpl, nAct int, seed int64) *Library {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(nImpl, 4)
	for i := 0; i < nImpl; i++ {
		n := 1 + rng.Intn(6)
		acts := make([]ActionID, 0, n)
		for j := 0; j < n; j++ {
			// Square the draw for a skewed (hot-head) distribution.
			f := rng.Float64()
			acts = append(acts, ActionID(f*f*float64(nAct)))
		}
		if _, err := b.Add(GoalID(i/3), acts); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	return b.Build()
}

// assertLibrariesEqual compares every accessor-visible aspect of two
// libraries.
func assertLibrariesEqual(t *testing.T, want, got *Library) {
	t.Helper()
	if want.NumImplementations() != got.NumImplementations() ||
		want.NumActions() != got.NumActions() || want.NumGoals() != got.NumGoals() {
		t.Fatalf("dimensions: want (%d,%d,%d), got (%d,%d,%d)",
			want.NumImplementations(), want.NumActions(), want.NumGoals(),
			got.NumImplementations(), got.NumActions(), got.NumGoals())
	}
	if want.MaxImplLen() != got.MaxImplLen() || want.ImplLenSorted() != got.ImplLenSorted() {
		t.Fatalf("scalars: want (%d,%v), got (%d,%v)",
			want.MaxImplLen(), want.ImplLenSorted(), got.MaxImplLen(), got.ImplLenSorted())
	}
	for p := 0; p < want.NumImplementations(); p++ {
		id := ImplID(p)
		if want.Goal(id) != got.Goal(id) {
			t.Fatalf("impl %d: goal %d != %d", p, got.Goal(id), want.Goal(id))
		}
		if !slicesEq(want.Actions(id), got.Actions(id)) {
			t.Fatalf("impl %d: actions %v != %v", p, got.Actions(id), want.Actions(id))
		}
	}
	for a := 0; a < want.NumActions(); a++ {
		id := ActionID(a)
		if want.ActionDegree(id) != got.ActionDegree(id) {
			t.Fatalf("action %d: degree %d != %d", a, got.ActionDegree(id), want.ActionDegree(id))
		}
		if !slicesEq(want.ImplsOfAction(id), got.ImplsOfAction(id)) {
			t.Fatalf("action %d: postings differ", a)
		}
		wg, wc := want.GoalsOfAction(id)
		gg, gc := got.GoalsOfAction(id)
		if !slicesEq(wg, gg) || !slicesEq(wc, gc) {
			t.Fatalf("action %d: AG row differs", a)
		}
		wb, gb := want.ActionPostingBlocks(id), got.ActionPostingBlocks(id)
		if !slicesEq(wb.Last, gb.Last) || !slicesEq(wb.MinLen, gb.MinLen) || !slicesEq(wb.MaxLen, gb.MaxLen) {
			t.Fatalf("action %d: block metadata differs", a)
		}
	}
	for g := 0; g < want.NumGoals(); g++ {
		id := GoalID(g)
		if !slicesEq(want.ImplsOfGoal(id), got.ImplsOfGoal(id)) {
			t.Fatalf("goal %d: postings differ", g)
		}
		wa, wc := want.ActionsOfGoal(id)
		ga, gc := got.ActionsOfGoal(id)
		if !slicesEq(wa, ga) || !slicesEq(wc, gc) {
			t.Fatalf("goal %d: GA row differs", g)
		}
		if want.GoalWalkCost(id) != got.GoalWalkCost(id) {
			t.Fatalf("goal %d: walk cost %d != %d", g, got.GoalWalkCost(id), want.GoalWalkCost(id))
		}
	}
}

func slicesEq[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func snapshotRoundTrip(t *testing.T, lib *Library, vocab *Vocabulary, opts SnapshotOptions) *Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lib.gsnp")
	if err := WriteSnapshotFile(path, lib, vocab, opts); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	t.Cleanup(func() { snap.Close() })
	if err := VerifySnapshot(snap); err != nil {
		t.Fatalf("VerifySnapshot: %v", err)
	}
	return snap
}

func TestSnapshotRoundTripRaw(t *testing.T) {
	lib := snapTestLibrary(t, 2000, 80, 1)
	snap := snapshotRoundTrip(t, lib, nil, SnapshotOptions{})
	if snap.Library().PostingsCompressed() {
		t.Fatal("raw snapshot reports compressed postings")
	}
	assertLibrariesEqual(t, lib, snap.Library())
}

func TestSnapshotRoundTripCompressed(t *testing.T) {
	lib := snapTestLibrary(t, 2000, 80, 2)
	snap := snapshotRoundTrip(t, lib, nil, SnapshotOptions{CompressPostings: true})
	if !snap.Library().PostingsCompressed() {
		t.Fatal("compressed snapshot reports raw postings")
	}
	assertLibrariesEqual(t, lib, snap.Library())
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	lib := NewBuilder(0, 0).Build()
	snap := snapshotRoundTrip(t, lib, nil, SnapshotOptions{CompressPostings: true})
	assertLibrariesEqual(t, lib, snap.Library())
}

func TestSnapshotRoundTripVocabulary(t *testing.T) {
	lib, vocab, err := ReadJSONLines(bytes.NewReader([]byte(
		`{"goal":"dinner","actions":["buy pasta","boil water"]}
{"goal":"dinner","actions":["buy pasta","buy sauce"]}
{"goal":"party","actions":["buy sauce","invite friends"]}
`)))
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotRoundTrip(t, lib, vocab, SnapshotOptions{CompressPostings: true})
	assertLibrariesEqual(t, lib, snap.Library())
	v := snap.Vocabulary()
	if v == nil {
		t.Fatal("vocabulary not round-tripped")
	}
	for i, name := range vocab.Actions.Names() {
		if got := v.Actions.Name(int32(i)); got != name {
			t.Fatalf("action %d: %q != %q", i, got, name)
		}
	}
	for i, name := range vocab.Goals.Names() {
		if got := v.Goals.Name(int32(i)); got != name {
			t.Fatalf("goal %d: %q != %q", i, got, name)
		}
	}
}

// An extended (overlay) snapshot must serialize to the same canonical flat
// form as a full rebuild over the same implementations.
func TestSnapshotOfExtendedLibrary(t *testing.T) {
	d := NewDynamicLibrary()
	d.SetCompactionThreshold(1 << 30) // force the overlay path
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(0, 0)
	for i := 0; i < 600; i++ {
		acts := []ActionID{ActionID(rng.Intn(40)), ActionID(rng.Intn(40)), ActionID(rng.Intn(40))}
		if _, err := d.Add(GoalID(i%17), acts); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Add(GoalID(i%17), acts); err != nil {
			t.Fatal(err)
		}
		if i == 100 {
			d.Snapshot() // freeze a base epoch so later adds go through overlays
		}
	}
	ext := d.Snapshot()
	if ext.ovActPost == nil {
		t.Fatal("expected an extended snapshot")
	}
	flat := b.Build()
	for _, compress := range []bool{false, true} {
		snap := snapshotRoundTrip(t, ext, nil, SnapshotOptions{CompressPostings: compress})
		assertLibrariesEqual(t, flat, snap.Library())
	}
}

// A library loaded from a compressed snapshot must serialize again (the
// compaction path) without loss.
func TestSnapshotRewriteFromMapped(t *testing.T) {
	lib := snapTestLibrary(t, 1500, 60, 3)
	snap := snapshotRoundTrip(t, lib, nil, SnapshotOptions{CompressPostings: true})
	again := snapshotRoundTrip(t, snap.Library(), nil, SnapshotOptions{})
	assertLibrariesEqual(t, lib, again.Library())
}

// Extending a compressed mmap-backed library through a DynamicLibrary swap
// must keep all rows correct (the ingest-on-top-of-snapshot path).
func TestDynamicExtendOverCompressedSnapshot(t *testing.T) {
	lib := snapTestLibrary(t, 1200, 50, 4)
	snap := snapshotRoundTrip(t, lib, nil, SnapshotOptions{CompressPostings: true})

	d := NewDynamicLibrary()
	d.SetCompactionThreshold(1 << 30)
	d.Swap(snap.Library())
	ref := NewBuilder(0, 0)
	for p := 0; p < lib.NumImplementations(); p++ {
		if _, err := ref.Add(lib.Goal(ImplID(p)), lib.Actions(ImplID(p))); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		acts := []ActionID{ActionID(rng.Intn(50)), ActionID(rng.Intn(50))}
		if _, err := d.Add(GoalID(rng.Intn(40)), acts); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Add(GoalID(rng.Intn(40)), acts); err == nil {
			// ref must add the same implementation; re-seed to stay aligned.
			_ = err
		}
	}
	// Rebuild the reference deterministically instead: replay d's contents.
	got := d.Snapshot()
	b := NewBuilder(0, 0)
	for p := 0; p < got.NumImplementations(); p++ {
		if _, err := b.Add(got.Goal(ImplID(p)), got.Actions(ImplID(p))); err != nil {
			t.Fatal(err)
		}
	}
	assertLibrariesEqual(t, b.Build(), got)
}

func TestPostingRowRangeCompressed(t *testing.T) {
	lib := snapTestLibrary(t, 3000, 20, 6) // few actions: long rows, many blocks
	snap := snapshotRoundTrip(t, lib, nil, SnapshotOptions{CompressPostings: true})
	cl := snap.Library()
	var buf []ImplID
	for a := 0; a < lib.NumActions(); a++ {
		row := lib.ImplsOfAction(ActionID(a))
		for _, span := range [][2]ImplID{{0, 3000}, {0, 1}, {100, 900}, {512, 513}, {2999, 3000}, {1500, 1500}} {
			want := subRange(row, span[0], span[1])
			var got []ImplID
			got, buf = cl.PostingRowRange(ActionID(a), span[0], span[1], buf)
			if !slicesEq(want, got) {
				t.Fatalf("action %d range %v: got %d entries, want %d", a, span, len(got), len(want))
			}
		}
	}
}

func TestPostingRowCursorCompressed(t *testing.T) {
	lib := snapTestLibrary(t, 3000, 15, 8)
	snap := snapshotRoundTrip(t, lib, nil, SnapshotOptions{CompressPostings: true})
	cl := snap.Library()
	for a := 0; a < lib.NumActions(); a++ {
		row := lib.ImplsOfAction(ActionID(a))
		cur := cl.PostingRowCursor(ActionID(a))
		if cur.Len() != len(row) {
			t.Fatalf("action %d: cursor len %d != %d", a, cur.Len(), len(row))
		}
		for i := 0; i < len(row); i += 37 {
			if got := cur.At(i); got != row[i] {
				t.Fatalf("action %d At(%d): %d != %d", a, i, got, row[i])
			}
			if got := cur.AtLeast(i, row[i]); !got {
				t.Fatalf("action %d AtLeast(%d, self) = false", a, i)
			}
			if got := cur.AtLeast(i, row[i]+1); got {
				t.Fatalf("action %d AtLeast(%d, self+1) = true", a, i)
			}
		}
		for _, probe := range []ImplID{0, 1, 500, 1499, 2999, 3001} {
			wantIdx := 0
			for wantIdx < len(row) && row[wantIdx] < probe {
				wantIdx++
			}
			if got := cur.Search(0, len(row), probe); got != wantIdx {
				t.Fatalf("action %d Search(%d): %d != %d", a, probe, got, wantIdx)
			}
		}
		// Block-aligned slices must match the raw row.
		for lo := 0; lo < len(row); lo += PostingBlockEntries {
			hi := lo + PostingBlockEntries
			if hi > len(row) {
				hi = len(row)
			}
			if !slicesEq(cur.Slice(lo, hi), row[lo:hi]) {
				t.Fatalf("action %d Slice(%d, %d) differs", a, lo, hi)
			}
		}
	}
}

// Corruption anywhere in the header or table must fail cleanly.
func TestOpenSnapshotCorrupt(t *testing.T) {
	lib := snapTestLibrary(t, 300, 30, 9)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, lib, nil, SnapshotOptions{CompressPostings: true}); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()

	open := func(data []byte) error {
		_, err := OpenSnapshotBytes(data)
		return err
	}
	if err := open(orig); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	mut := func(mutate func(d []byte)) []byte {
		d := append([]byte(nil), orig...)
		mutate(d)
		return d
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": orig[:32],
		"bad magic":    mut(func(d []byte) { d[0] ^= 0xff }),
		"bad version":  mut(func(d []byte) { binary.LittleEndian.PutUint32(d[4:], 99) }),
		"flipped flag": mut(func(d []byte) { d[8] ^= 0x01 }),
		"crc mismatch": mut(func(d []byte) { d[16] ^= 0x01 }),
		"table bit":    mut(func(d []byte) { d[snapHeaderSize+8] ^= 0x01 }),
		"truncated":    orig[:len(orig)/2],
		"sect count":   mut(func(d []byte) { binary.LittleEndian.PutUint32(d[12:], 1000) }),
	}
	for name, data := range cases {
		if err := open(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

// Flipping a bit inside a section body is not caught by the O(1) open (by
// design), but must be caught by VerifySnapshot.
func TestVerifySnapshotCatchesBodyCorruption(t *testing.T) {
	lib := snapTestLibrary(t, 300, 30, 10)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, lib, nil, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a bit in the middle of the actPost section body.
	secs, _, err := snapshotSections(data)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := secs[secActPost]
	if !ok {
		t.Fatal("no actPost section in raw snapshot")
	}
	data[s.off+s.count*uint64(s.elem)/2] ^= 0x40
	snap, err := OpenSnapshotBytes(data)
	if err != nil {
		return // corruption happened to hit a spot-checked invariant: fine
	}
	if err := VerifySnapshot(snap); err == nil {
		t.Error("VerifySnapshot accepted a corrupted section body")
	}
}

func TestWriteSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	lib := snapTestLibrary(t, 100, 10, 11)
	path := filepath.Join(dir, "a.gsnp")
	if err := WriteSnapshotFile(path, lib, nil, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "a.gsnp" {
		t.Fatalf("directory not clean after write: %v", ents)
	}
}
