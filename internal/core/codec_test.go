package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestInterner(t *testing.T) {
	in := NewInterner(4)
	a := in.Intern("pickles")
	b := in.Intern("nutmeg")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if got := in.Intern("pickles"); got != a {
		t.Errorf("re-interning returned %d, want %d", got, a)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if got := in.Name(a); got != "pickles" {
		t.Errorf("Name(%d) = %q", a, got)
	}
	if got := in.Name(99); got != "" {
		t.Errorf("Name out of range = %q, want empty", got)
	}
	if _, ok := in.Lookup("absent"); ok {
		t.Error("Lookup of absent name succeeded")
	}
	if id, ok := in.Lookup("nutmeg"); !ok || id != b {
		t.Errorf("Lookup(nutmeg) = %d, %v", id, ok)
	}
}

func TestInternerZeroValue(t *testing.T) {
	var in Interner
	if got := in.Intern("x"); got != 0 {
		t.Errorf("first id on zero-value Interner = %d, want 0", got)
	}
}

func TestVocabularyFallbacks(t *testing.T) {
	v := NewVocabulary()
	v.Actions.Intern("carrots")
	if got := v.ActionName(0); got != "carrots" {
		t.Errorf("ActionName(0) = %q", got)
	}
	if got := v.ActionName(7); got != "action#7" {
		t.Errorf("ActionName(7) = %q, want numeric fallback", got)
	}
	if got := v.GoalName(3); got != "goal#3" {
		t.Errorf("GoalName(3) = %q, want numeric fallback", got)
	}
	var nilVocab *Vocabulary
	if got := nilVocab.ActionName(1); got != "action#1" {
		t.Errorf("nil vocabulary ActionName = %q", got)
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	const src = `{"goal":"olivier salad","actions":["potatoes","carrots","pickles"]}
{"goal":"mashed potatoes","actions":["potatoes","nutmeg"]}
{"goal":"pan-fried carrots","actions":["carrots","nutmeg"]}
`
	lib, vocab, err := ReadJSONLines(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if lib.NumImplementations() != 3 {
		t.Fatalf("NumImplementations = %d, want 3", lib.NumImplementations())
	}
	potatoes, ok := vocab.Actions.Lookup("potatoes")
	if !ok {
		t.Fatal("potatoes not interned")
	}
	if deg := lib.ActionDegree(ActionID(potatoes)); deg != 2 {
		t.Errorf("degree(potatoes) = %d, want 2", deg)
	}

	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, lib, vocab); err != nil {
		t.Fatal(err)
	}
	lib2, vocab2, err := ReadJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lib2.NumImplementations() != lib.NumImplementations() {
		t.Fatalf("round trip changed implementation count")
	}
	for p := 0; p < lib.NumImplementations(); p++ {
		g1 := vocab.GoalName(lib.Goal(ImplID(p)))
		g2 := vocab2.GoalName(lib2.Goal(ImplID(p)))
		if g1 != g2 {
			t.Errorf("impl %d goal %q != %q", p, g1, g2)
		}
		if lib.ImplLen(ImplID(p)) != lib2.ImplLen(ImplID(p)) {
			t.Errorf("impl %d length changed", p)
		}
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomLibrary(r, 1+r.Intn(40), 15, 8))
		},
	}
	f := func(lib *Library) bool {
		// Give every id a synthetic name.
		vocab := NewVocabulary()
		for a := 0; a < lib.NumActions(); a++ {
			vocab.Actions.Intern(fmt.Sprintf("action-%d", a))
		}
		for g := 0; g < lib.NumGoals(); g++ {
			vocab.Goals.Intern(fmt.Sprintf("goal-%d", g))
		}
		var buf bytes.Buffer
		if err := WriteJSONLines(&buf, lib, vocab); err != nil {
			return false
		}
		got, _, err := ReadJSONLines(&buf)
		if err != nil || got.NumImplementations() != lib.NumImplementations() {
			return false
		}
		// Names intern in first-seen order, so ids can permute; compare
		// per-implementation multiset sizes and goal-degree histograms.
		for p := 0; p < lib.NumImplementations(); p++ {
			if got.ImplLen(ImplID(p)) != lib.ImplLen(ImplID(p)) {
				return false
			}
		}
		return got.Stats().TotalSlots == lib.Stats().TotalSlots
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadJSONLinesRejectsGarbage(t *testing.T) {
	if _, _, err := ReadJSONLines(strings.NewReader("not json")); err == nil {
		t.Error("garbage input accepted")
	}
	if _, _, err := ReadJSONLines(strings.NewReader(`{"goal":"g","actions":[]}`)); err == nil {
		t.Error("empty activity accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	lib := randomLibrary(r, 200, 50, 20)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumImplementations() != lib.NumImplementations() {
		t.Fatalf("implementation count %d != %d", got.NumImplementations(), lib.NumImplementations())
	}
	for p := 0; p < lib.NumImplementations(); p++ {
		if got.Goal(ImplID(p)) != lib.Goal(ImplID(p)) {
			t.Fatalf("impl %d goal mismatch", p)
		}
		if !equalActions(got.Actions(ImplID(p)), lib.Actions(ImplID(p))) {
			t.Fatalf("impl %d actions mismatch", p)
		}
	}
	// Indexes must come back identical too — including the AG-idx, which the
	// loader rebuilds rather than deserializes.
	for a := ActionID(0); int(a) < lib.NumActions(); a++ {
		if !equalImpls(got.ImplsOfAction(a), lib.ImplsOfAction(a)) {
			t.Fatalf("postings of action %d mismatch", a)
		}
		gGoals, gCnt := got.GoalsOfAction(a)
		wGoals, wCnt := lib.GoalsOfAction(a)
		if !reflect.DeepEqual(gGoals, wGoals) || !reflect.DeepEqual(gCnt, wCnt) {
			t.Fatalf("AG row of action %d mismatch: %v/%v != %v/%v", a, gGoals, gCnt, wGoals, wCnt)
		}
	}
	for g := GoalID(0); int(g) < lib.NumGoals(); g++ {
		if got.GoalWalkCost(g) != lib.GoalWalkCost(g) {
			t.Fatalf("walk cost of goal %d mismatch", g)
		}
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	lib := paperLibrary(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff // corrupt magic
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt magic accepted")
	}

	if _, err := ReadBinary(bytes.NewReader(data[:10])); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated body accepted")
	}

	// Header/body dimension disagreements must fail descriptively instead of
	// building an index with out-of-range ids or an enormous allocation.
	mutate := func(name string, f func(d []byte)) {
		d := append([]byte(nil), data...)
		f(d)
		if _, err := ReadBinary(bytes.NewReader(d)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("huge action space", func(d []byte) { binary.LittleEndian.PutUint32(d[12:], 1<<30) })
	mutate("huge goal space", func(d []byte) { binary.LittleEndian.PutUint32(d[16:], 1<<30) })
	mutate("zero action space", func(d []byte) { binary.LittleEndian.PutUint32(d[12:], 0) })
	mutate("zero goal space", func(d []byte) { binary.LittleEndian.PutUint32(d[16:], 0) })
	mutate("huge slot count", func(d []byte) { binary.LittleEndian.PutUint32(d[20:], 1<<30) })
}

// The declared id spaces may exceed the largest id actually present (ids
// interned but never used); the loader must preserve them instead of
// shrinking the library's dimensions to the scanned maxima.
func TestReadBinaryPreservesDeclaredDims(t *testing.T) {
	b := NewBuilder(2, 2)
	if _, err := b.Add(3, []ActionID{1, 5}); err != nil {
		t.Fatal(err)
	}
	lib := b.Build()
	lib.numActions = 9
	lib.numGoals = 7
	var buf bytes.Buffer
	if err := WriteBinary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumActions() != 9 || got.NumGoals() != 7 {
		t.Fatalf("declared dims lost: got (%d actions, %d goals), want (9, 7)", got.NumActions(), got.NumGoals())
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	type impl struct {
		g GoalID
		a []ActionID
	}
	data := make([]impl, 10000)
	for i := range data {
		acts := make([]ActionID, 2+r.Intn(8))
		for j := range acts {
			acts[j] = ActionID(r.Intn(2000))
		}
		data[i] = impl{GoalID(r.Intn(1000)), acts}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewBuilder(len(data), 6)
		for _, d := range data {
			if _, err := builder.Add(d.g, d.a); err != nil {
				b.Fatal(err)
			}
		}
		builder.Build()
	}
}

func BenchmarkImplementationSpace(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	lib := randomLibrary(r, 20000, 2000, 500)
	h := []ActionID{3, 77, 500, 1200, 1999}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib.ImplementationSpace(h)
	}
}
