//go:build !unix

package core

import (
	"io"

	"goalrec/internal/faultfs"
)

// mmapFile on platforms without a memory-mapping syscall surface falls back
// to reading the whole file; the zero-copy section views then alias the heap
// buffer instead of a mapping, preserving the format contract (not the
// page-in cost profile).
func mmapFile(f faultfs.File) ([]byte, func() error, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
