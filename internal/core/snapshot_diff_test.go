package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// diffTestLibraries returns a base snapshot library and an extended successor
// (same lineage, later epoch) plus their full snapshot images.
func diffTestLibraries(t *testing.T, opts SnapshotOptions) (baseLib, newLib *Library, baseImg, fullImg []byte) {
	t.Helper()
	d := NewDynamicLibrary()
	addSome := func(n, seed int) {
		for i := 0; i < n; i++ {
			acts := []ActionID{ActionID((i + seed) % 37), ActionID((i * 7) % 37), ActionID((i*i + seed) % 37)}
			if _, err := d.Add(GoalID(i%11), acts); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
	}
	addSome(1500, 1)
	baseLib = d.Snapshot()
	addSome(400, 3)
	newLib = d.Snapshot()
	if baseLib.Epoch() == newLib.Epoch() {
		t.Fatalf("epochs did not advance: %d", baseLib.Epoch())
	}
	var bb, fb bytes.Buffer
	if err := WriteSnapshot(&bb, baseLib, nil, opts); err != nil {
		t.Fatalf("WriteSnapshot(base): %v", err)
	}
	if err := WriteSnapshot(&fb, newLib, nil, opts); err != nil {
		t.Fatalf("WriteSnapshot(new): %v", err)
	}
	return baseLib, newLib, bb.Bytes(), fb.Bytes()
}

// TestSnapshotDiffMaterializeBitIdentical is the core delta invariant:
// materialize(diff(new, base), base) must reproduce WriteSnapshot(new) byte
// for byte, raw and compressed, and the delta must actually reference base
// bytes rather than inlining everything.
func TestSnapshotDiffMaterializeBitIdentical(t *testing.T) {
	for _, compress := range []bool{false, true} {
		opts := SnapshotOptions{CompressPostings: compress}
		baseLib, newLib, baseImg, fullImg := diffTestLibraries(t, opts)
		base, err := NewSnapshotBase(baseImg)
		if err != nil {
			t.Fatalf("NewSnapshotBase: %v", err)
		}
		var db bytes.Buffer
		if err := WriteSnapshotDiff(&db, newLib, nil, opts, base); err != nil {
			t.Fatalf("WriteSnapshotDiff: %v", err)
		}
		delta := db.Bytes()
		if !IsSnapshotDelta(delta) {
			t.Fatalf("compress=%v: delta not recognized", compress)
		}
		if err := VerifySnapshotChecksum(delta); err != nil {
			t.Fatalf("compress=%v: delta checksum: %v", compress, err)
		}
		secs, _, baseEpoch, err := parseDelta(delta)
		if err != nil {
			t.Fatalf("parseDelta: %v", err)
		}
		if baseEpoch != baseLib.Epoch() {
			t.Fatalf("compress=%v: delta base epoch %d, want %d", compress, baseEpoch, baseLib.Epoch())
		}
		var ref uint64
		for _, d := range secs {
			ref += d.refLen
		}
		if ref == 0 {
			t.Fatalf("compress=%v: delta references no base bytes", compress)
		}
		got, err := MaterializeDelta(delta, base)
		if err != nil {
			t.Fatalf("MaterializeDelta: %v", err)
		}
		if !bytes.Equal(got, fullImg) {
			t.Fatalf("compress=%v: materialized image differs from full snapshot (%d vs %d bytes)", compress, len(got), len(fullImg))
		}
		s, err := OpenSnapshotBytes(got)
		if err != nil {
			t.Fatalf("open materialized: %v", err)
		}
		assertLibrariesEqual(t, newLib, s.Library())
	}
}

// TestSnapshotDiffSelfIsAllReference diffs a library against its own
// snapshot: every section must be a whole reference and the delta an order
// of magnitude smaller than the full image.
func TestSnapshotDiffSelfIsAllReference(t *testing.T) {
	baseLib, _, baseImg, _ := diffTestLibraries(t, SnapshotOptions{})
	base, err := NewSnapshotBase(baseImg)
	if err != nil {
		t.Fatalf("NewSnapshotBase: %v", err)
	}
	var db bytes.Buffer
	if err := WriteSnapshotDiff(&db, baseLib, nil, SnapshotOptions{}, base); err != nil {
		t.Fatalf("WriteSnapshotDiff: %v", err)
	}
	delta := db.Bytes()
	secs, _, _, err := parseDelta(delta)
	if err != nil {
		t.Fatalf("parseDelta: %v", err)
	}
	for _, d := range secs {
		if d.inlineLen() != 0 && d.count > 0 {
			t.Fatalf("section %d inlines %d bytes on a self-diff", d.id, d.inlineLen())
		}
	}
	if len(delta)*10 > len(baseImg) {
		t.Fatalf("self-diff is %d bytes against a %d-byte base", len(delta), len(baseImg))
	}
	got, err := MaterializeDelta(delta, base)
	if err != nil {
		t.Fatalf("MaterializeDelta: %v", err)
	}
	if !bytes.Equal(got, baseImg) {
		t.Fatalf("self-diff did not round-trip")
	}
}

// TestSnapshotDiffDetectsBaseRot flips a referenced base byte and expects
// materialization to fail on the recorded prefix crc.
func TestSnapshotDiffDetectsBaseRot(t *testing.T) {
	_, newLib, baseImg, _ := diffTestLibraries(t, SnapshotOptions{})
	base, err := NewSnapshotBase(baseImg)
	if err != nil {
		t.Fatalf("NewSnapshotBase: %v", err)
	}
	var db bytes.Buffer
	if err := WriteSnapshotDiff(&db, newLib, nil, SnapshotOptions{}, base); err != nil {
		t.Fatalf("WriteSnapshotDiff: %v", err)
	}
	delta := db.Bytes()
	secs, _, _, err := parseDelta(delta)
	if err != nil {
		t.Fatalf("parseDelta: %v", err)
	}
	// Corrupt one byte inside the largest referenced prefix.
	var victim deltaSection
	for _, d := range secs {
		if d.refLen > victim.refLen {
			victim = d
		}
	}
	if victim.refLen == 0 {
		t.Fatalf("no referenced section to corrupt")
	}
	rotted := bytes.Clone(baseImg)
	bs := base.secs[victim.id]
	rotted[bs.off+victim.refLen/2] ^= 0x40
	rottedBase, err := NewSnapshotBase(rotted)
	if err != nil {
		t.Fatalf("NewSnapshotBase(rotted): %v", err)
	}
	if _, err := MaterializeDelta(delta, rottedBase); err == nil {
		t.Fatalf("materialize over rotted base succeeded")
	}
}

// TestSnapshotDiffWrongBaseEpoch materializes against a base of a different
// epoch and expects a refusal.
func TestSnapshotDiffWrongBaseEpoch(t *testing.T) {
	_, newLib, baseImg, fullImg := diffTestLibraries(t, SnapshotOptions{})
	base, err := NewSnapshotBase(baseImg)
	if err != nil {
		t.Fatalf("NewSnapshotBase: %v", err)
	}
	var db bytes.Buffer
	if err := WriteSnapshotDiff(&db, newLib, nil, SnapshotOptions{}, base); err != nil {
		t.Fatalf("WriteSnapshotDiff: %v", err)
	}
	wrong, err := NewSnapshotBase(fullImg) // the new full image: later epoch
	if err != nil {
		t.Fatalf("NewSnapshotBase(full): %v", err)
	}
	if _, err := MaterializeDelta(db.Bytes(), wrong); err == nil {
		t.Fatalf("materialize against wrong-epoch base succeeded")
	}
}

// TestScrubSnapshotFileDelta scrubs a delta file on disk: clean passes, a
// flipped payload byte is classified as corruption (ErrCorruptSnapshot).
func TestScrubSnapshotFileDelta(t *testing.T) {
	_, newLib, baseImg, _ := diffTestLibraries(t, SnapshotOptions{CompressPostings: true})
	base, err := NewSnapshotBase(baseImg)
	if err != nil {
		t.Fatalf("NewSnapshotBase: %v", err)
	}
	path := filepath.Join(t.TempDir(), "snap-1.gsnpd")
	if err := WriteSnapshotDiffFile(path, newLib, nil, SnapshotOptions{CompressPostings: true}, base); err != nil {
		t.Fatalf("WriteSnapshotDiffFile: %v", err)
	}
	if err := ScrubSnapshotFile(nil, path); err != nil {
		t.Fatalf("scrub clean delta: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)-snapFooterSize-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := ScrubSnapshotFile(nil, path); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("scrub corrupt delta: got %v, want ErrCorruptSnapshot", err)
	}
}
