//go:build !linux

package core

// madviseSpan is a no-op off Linux: paging hints are an optimization, not a
// correctness requirement, and non-Linux mmapFile fallbacks may hand back
// heap buffers where madvise would be meaningless.
func madviseSpan(data []byte, off, n uint64, advice int) {}
