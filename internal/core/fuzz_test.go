package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONLines checks that arbitrary input never panics the JSON-lines
// parser, and that anything it accepts survives a write/read round trip.
func FuzzReadJSONLines(f *testing.F) {
	f.Add(`{"goal":"g","actions":["a","b"]}`)
	f.Add(`{"goal":"g","actions":["a"]}` + "\n" + `{"goal":"h","actions":["a","c"]}`)
	f.Add(`{"goal":"","actions":[]}`)
	f.Add(`not json at all`)
	f.Add(`{"goal":"g","actions":["a",` + "\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		lib, vocab, err := ReadJSONLines(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONLines(&buf, lib, vocab); err != nil {
			t.Fatalf("accepted library failed to serialize: %v", err)
		}
		lib2, _, err := ReadJSONLines(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if lib2.NumImplementations() != lib.NumImplementations() {
			t.Fatalf("round trip changed size: %d -> %d",
				lib.NumImplementations(), lib2.NumImplementations())
		}
	})
}

// FuzzReadBinary checks that corrupt snapshots are rejected without panics.
func FuzzReadBinary(f *testing.F) {
	var b Builder
	if _, err := b.Add(0, []ActionID{0, 1}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x49, 0x4c, 0x47})
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must be internally consistent.
		for p := 0; p < lib.NumImplementations(); p++ {
			acts := lib.Actions(ImplID(p))
			if len(acts) == 0 {
				t.Fatal("parsed library has an empty implementation")
			}
		}
	})
}
