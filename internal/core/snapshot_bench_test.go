package core

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkColdStart times the two ways a process can get a library serving
// from disk: the legacy binary codec (read + decode + rebuild every index)
// against the snapshot format (mmap + header/section-table validation, data
// pages faulting in lazily). Files are written once per size; both loads
// read a page-cache-warm file, so the gap measured is decode and index work.
func BenchmarkColdStart(b *testing.B) {
	for _, size := range []int{250_000, 1_000_000} {
		r := rand.New(rand.NewSource(int64(size)))
		lib := randomLibrary(r, size, 10_000, size/8)
		dir := b.TempDir()

		binPath := filepath.Join(dir, "lib.bin")
		f, err := os.Create(binPath)
		if err != nil {
			b.Fatal(err)
		}
		if err := WriteBinary(f, lib); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		snapPath := filepath.Join(dir, "lib.gsnp")
		if err := WriteSnapshotFile(snapPath, lib, nil, SnapshotOptions{CompressPostings: true}); err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("decode/impls=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := os.Open(binPath)
				if err != nil {
					b.Fatal(err)
				}
				got, err := ReadBinary(bufio.NewReaderSize(f, 1<<20))
				f.Close()
				if err != nil {
					b.Fatal(err)
				}
				if got.NumImplementations() != size {
					b.Fatal("short load")
				}
			}
		})
		b.Run(fmt.Sprintf("mmap/impls=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snap, err := OpenSnapshot(snapPath)
				if err != nil {
					b.Fatal(err)
				}
				if snap.Library().NumImplementations() != size {
					b.Fatal("short load")
				}
				if err := snap.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpenSnapshotAdvise isolates what the open-time paging hints cost:
// the same mmap open with the per-section madvise calls enabled vs disabled.
// The hint budget must stay in the noise of an open — the eager page-in of
// large spans belongs to the optional Warmup, not here.
func BenchmarkOpenSnapshotAdvise(b *testing.B) {
	const size = 250_000
	r := rand.New(rand.NewSource(int64(size)))
	lib := randomLibrary(r, size, 10_000, size/8)
	snapPath := filepath.Join(b.TempDir(), "lib.gsnp")
	if err := WriteSnapshotFile(snapPath, lib, nil, SnapshotOptions{CompressPostings: true}); err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("madvise=%t", on), func(b *testing.B) {
			SetSnapshotMadvise(on)
			defer SetSnapshotMadvise(true)
			// Close (which syncs the async hint pass) stays outside the
			// timer: the cell of record is time-to-serviceable, as in the
			// cold-start experiment.
			for i := 0; i < b.N; i++ {
				snap, err := OpenSnapshot(snapPath)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := snap.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
