package core

import (
	"sync"
	"sync/atomic"
)

// This file implements the process-wide decoded-block cache behind the
// compressed-posting access surface (postings.go). Entries are immutable
// decoded posting blocks keyed by {source id, global block index}, where the
// source id uniquely identifies one compressedPostings blob for the life of
// the process (snapshot.go assigns it at open). Because a block's decoded
// content is fully determined by that immutable blob, a key can never resolve
// to stale data across ingest or epoch swaps: a new snapshot gets a new
// source id, while overlay-extended epochs share their base's blob — and its
// still-valid cached blocks — by construction.
//
// Admission is a TinyLFU-style doorkeeper: a block is inserted only on its
// second touch within a doorkeeper generation, so one-pass scans (compaction,
// cold benchmarks) stream through without evicting the resident hot set, and
// the common miss decodes straight into the caller's pooled buffer exactly as
// before — the cache adds no allocation to unadmitted reads. Eviction is LRU
// under a per-shard byte budget. See DESIGN.md "Paged serving & block cache".

// blockCacheShards is the shard count; keys are spread by a mixed hash so
// per-shard mutexes rarely contend.
const blockCacheShards = 16

// blockEntryOverhead approximates the per-entry bookkeeping bytes (entry
// struct, map cell, slice header) counted against the byte budget on top of
// the decoded payload.
const blockEntryOverhead = 96

type blockKey struct {
	src uint64 // compressedPostings identity (cp.id)
	blk uint32 // global block index within src
}

type blockEntry struct {
	key        blockKey
	row        []ImplID // immutable after insert
	prev, next *blockEntry
}

type blockShard struct {
	mu      sync.Mutex
	entries map[blockKey]*blockEntry
	head    *blockEntry // most recently used
	tail    *blockEntry // eviction victim
	bytes   int64
	budget  int64
	door    map[blockKey]struct{} // doorkeeper: keys seen once this generation
	doorCap int
}

// BlockCacheStats is a point-in-time snapshot of the process block cache
// counters, surfaced through /v1/metrics and -bench-json.
type BlockCacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Admitted    uint64 `json:"admitted"`
	Evicted     uint64 `json:"evicted"`
	Entries     int64  `json:"entries"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s BlockCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BlockCache is a sharded, byte-budgeted cache of decoded posting blocks.
type BlockCache struct {
	shards   [blockCacheShards]blockShard
	budget   int64
	hits     atomic.Uint64
	misses   atomic.Uint64
	admitted atomic.Uint64
	evicted  atomic.Uint64
}

// newBlockCache returns a cache bounded by budget bytes across all shards.
func newBlockCache(budget int64) *BlockCache {
	c := &BlockCache{budget: budget}
	per := budget / blockCacheShards
	if per < 1 {
		per = 1
	}
	// Doorkeeper generations track roughly twice the resident entry count so
	// a hot block's first and second touch land in the same generation.
	doorCap := int(2 * per / (4*PostingBlockEntries + blockEntryOverhead))
	if doorCap < 64 {
		doorCap = 64
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.budget = per
		s.doorCap = doorCap
		s.entries = make(map[blockKey]*blockEntry)
		s.door = make(map[blockKey]struct{})
	}
	return c
}

func (k blockKey) hash() uint64 {
	// splitmix64-style mix over both fields.
	h := k.src ^ uint64(k.blk)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ h>>31
}

func (c *BlockCache) shard(k blockKey) *blockShard {
	return &c.shards[k.hash()%blockCacheShards]
}

// getOrAdmit looks up k. On a hit it returns the cached block (row != nil).
// On a miss it consults the doorkeeper: admit reports whether the caller
// should decode the block into a fresh slice and insert it; when false the
// caller decodes into its own pooled buffer as if the cache did not exist.
func (c *BlockCache) getOrAdmit(k blockKey) (row []ImplID, admit bool) {
	s := c.shard(k)
	s.mu.Lock()
	if e := s.entries[k]; e != nil {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.row, false
	}
	// Doorkeeper: admit on the second touch within a generation.
	if _, seen := s.door[k]; seen {
		delete(s.door, k)
		admit = true
	} else {
		if len(s.door) >= s.doorCap {
			clear(s.door)
		}
		s.door[k] = struct{}{}
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, admit
}

// insert stores the decoded block for k, evicting LRU entries to stay within
// the shard budget. row must be immutable from this point on. A concurrent
// duplicate insert keeps the resident entry.
func (c *BlockCache) insert(k blockKey, row []ImplID) {
	cost := int64(cap(row))*4 + blockEntryOverhead
	s := c.shard(k)
	s.mu.Lock()
	if e := s.entries[k]; e != nil {
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	e := &blockEntry{key: k, row: row}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += cost
	var evicted uint64
	for s.bytes > s.budget && s.tail != nil && s.tail != e {
		evicted++
		s.removeLocked(s.tail)
	}
	s.mu.Unlock()
	c.admitted.Add(1)
	if evicted > 0 {
		c.evicted.Add(evicted)
	}
}

// purgeSrc drops every entry of source src — called when a snapshot closes so
// a dead mapping's blocks stop occupying budget.
func (c *BlockCache) purgeSrc(src uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if k.src == src {
				s.removeLocked(e)
			}
		}
		for k := range s.door {
			if k.src == src {
				delete(s.door, k)
			}
		}
		s.mu.Unlock()
	}
}

func (s *blockShard) pushFront(e *blockEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *blockShard) moveToFront(e *blockEntry) {
	if s.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	s.pushFront(e)
}

func (s *blockShard) removeLocked(e *blockEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(s.entries, e.key)
	s.bytes -= int64(cap(e.row))*4 + blockEntryOverhead
}

// stats sums the per-shard state into a BlockCacheStats.
func (c *BlockCache) stats() BlockCacheStats {
	st := BlockCacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Admitted:    c.admitted.Load(),
		Evicted:     c.evicted.Load(),
		BudgetBytes: c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.entries))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// blockCachePtr holds the active process cache; nil means disabled (the
// default — daemons opt in via SetBlockCacheBytes).
var blockCachePtr atomic.Pointer[BlockCache]

// blockCacheSrcSeq hands out compressedPostings source ids; 0 is reserved for
// "uncacheable".
var blockCacheSrcSeq atomic.Uint64

// SetBlockCacheBytes (re)configures the process-wide decoded-block cache with
// the given byte budget. A budget <= 0 disables the cache entirely; changing
// the budget replaces the cache, discarding cached blocks but keeping
// nothing stale (entries are immutable). Safe to call concurrently with
// readers.
func SetBlockCacheBytes(n int64) {
	if n <= 0 {
		blockCachePtr.Store(nil)
		return
	}
	blockCachePtr.Store(newBlockCache(n))
}

// BlockCacheMetrics returns the current cache counters; the zero value when
// the cache is disabled.
func BlockCacheMetrics() BlockCacheStats {
	c := blockCachePtr.Load()
	if c == nil {
		return BlockCacheStats{}
	}
	return c.stats()
}

// activeBlockCache returns the configured cache or nil.
func activeBlockCache() *BlockCache { return blockCachePtr.Load() }

// cachedBlock resolves global block g of l's compressed postings through the
// cache: it returns a shared immutable decoded block on a hit, decodes,
// inserts and returns a fresh block when the doorkeeper admits the key, and
// returns nil otherwise (the caller decodes into its own buffer). prev is the
// Last value of block g-1 and n the block's entry count.
func (l *Library) cachedBlock(c *BlockCache, g int, prev ImplID, n int) []ImplID {
	if c == nil || l.cp.id == 0 {
		return nil
	}
	k := blockKey{src: l.cp.id, blk: uint32(g)}
	row, admit := c.getOrAdmit(k)
	if row != nil {
		return row
	}
	if !admit {
		return nil
	}
	blob := l.cp.blob[l.cp.blobOff[g]:l.cp.blobOff[g+1]]
	row = decodeBlockAppend(blob, prev, n, make([]ImplID, 0, n))
	c.insert(k, row)
	return row
}
