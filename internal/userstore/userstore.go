// Package userstore provides the sharded in-memory per-user activity store:
// millions of {history, materialized CounterView, epoch} entries keyed by
// user id, with LRU-bounded view materialization. The store is mechanical —
// it owns maps, locks, the view LRU, and counters; the goalrec layer owns
// the view lifecycle semantics (resolution, hit/advance/rebuild) and WAL
// persistence.
package userstore

import (
	"container/list"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"goalrec/internal/strategy"
)

// ErrTooManyUsers reports an insert beyond the configured user capacity.
var ErrTooManyUsers = errors.New("userstore: user capacity exhausted")

// Options configures a Store. Zero values select the defaults.
type Options struct {
	// MaxUsers caps the number of tracked users (histories). ≤ 0 selects
	// the default of 2^21.
	MaxUsers int
	// MaxViews caps the number of materialized CounterViews held at once;
	// beyond it the least-recently-queried views are dematerialized (their
	// histories stay). ≤ 0 selects the default of 2^16.
	MaxViews int
	// Shards is the map shard count, rounded up to a power of two. ≤ 0
	// selects 64.
	Shards int
}

func (o Options) maxUsers() int {
	if o.MaxUsers > 0 {
		return o.MaxUsers
	}
	return 1 << 21
}

func (o Options) maxViews() int {
	if o.MaxViews > 0 {
		return o.MaxViews
	}
	return 1 << 16
}

// User is one tracked user. All fields are guarded by Mu except the
// intrusive LRU bookkeeping, which the store guards with its own lock.
// Lock order: User.Mu before the store's LRU lock; never two users at once.
type User struct {
	ID string

	Mu sync.Mutex

	// Names is the deduplicated activity history in append order — the
	// durable truth (action names survive snapshot swaps; resolved ids do
	// not). sorted is the same set ordered for O(log n) dedup.
	Names  []string
	sorted []string

	// View is the materialized counter state, nil when cold. ViewGen and
	// ViewEpoch stamp the engine lineage and snapshot epoch the view (and
	// its resolved ids) are valid against. Unresolved holds the history
	// names the view's library could not resolve, re-checked on advance.
	View       *strategy.CounterView
	ViewGen    uint64
	ViewEpoch  uint64
	Unresolved []string

	// Gone marks a user concurrently deleted: a caller that looked the user
	// up before the delete must re-fetch instead of mutating the orphan —
	// otherwise its journal writes would land after the delete record and
	// replay would resurrect the user.
	Gone bool

	elem     *list.Element // LRU element while materialized, nil otherwise
	accBytes int64         // view bytes currently accounted to the store
}

// AppendNames adds the given action names to the history, skipping names
// already present, and returns the newly added suffix (aliasing names'
// backing array only when nothing was skipped). Callers hold u.Mu. The
// returned slice is exactly what must be journaled: replaying it through
// AppendNames reproduces Names bit-identically.
func (u *User) AppendNames(names []string) []string {
	added := names[:0:0]
	for _, name := range names {
		i := sort.SearchStrings(u.sorted, name)
		if i < len(u.sorted) && u.sorted[i] == name {
			continue
		}
		u.sorted = append(u.sorted, "")
		copy(u.sorted[i+1:], u.sorted[i:])
		u.sorted[i] = name
		u.Names = append(u.Names, name)
		added = append(added, name)
	}
	return added
}

// HasName reports whether name is already in the history. Callers hold u.Mu.
func (u *User) HasName(name string) bool {
	i := sort.SearchStrings(u.sorted, name)
	return i < len(u.sorted) && u.sorted[i] == name
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Users int64 `json:"users"`
	Views int64 `json:"views"`

	Hits      uint64 `json:"hits"`       // queries served from a valid materialized view
	Advances  uint64 `json:"advances"`   // views carried across a same-lineage epoch extension
	Rebuilds  uint64 `json:"rebuilds"`   // views rebuilt after a lineage change (Swap)
	Cold      uint64 `json:"cold"`       // queries that materialized a view from scratch
	Evictions uint64 `json:"evictions"`  // views dropped by the LRU bound
	Appends   uint64 `json:"appends"`    // actions appended (post-dedup)
	Deletes   uint64 `json:"deletes"`    // users deleted
	TooMany   uint64 `json:"too_many"`   // inserts rejected by MaxUsers
	ViewBytes int64  `json:"view_bytes"` // approximate bytes held by materialized views
}

type shard struct {
	mu    sync.RWMutex
	users map[string]*User
}

// Store is the sharded user store. It is safe for concurrent use.
type Store struct {
	shards []shard
	mask   uint64

	maxUsers int
	maxViews int

	lruMu sync.Mutex
	lru   *list.List // of *User, front = most recently queried

	users     atomic.Int64
	views     atomic.Int64
	viewBytes atomic.Int64

	hits, advances, rebuilds, cold atomic.Uint64
	evictions, appends, deletes    atomic.Uint64
	tooMany                        atomic.Uint64
}

// New returns an empty store.
func New(o Options) *Store {
	n := o.Shards
	if n <= 0 {
		n = 64
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	s := &Store{
		shards:   make([]shard, shards),
		mask:     uint64(shards - 1),
		maxUsers: o.maxUsers(),
		maxViews: o.maxViews(),
		lru:      list.New(),
	}
	for i := range s.shards {
		s.shards[i].users = make(map[string]*User)
	}
	return s
}

// fnv1a is the 64-bit FNV-1a hash of id, the shard selector.
func fnv1a(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

func (s *Store) shardOf(id string) *shard {
	return &s.shards[fnv1a(id)&s.mask]
}

// Len returns the tracked user count.
func (s *Store) Len() int { return int(s.users.Load()) }

// MaxViews returns the materialization bound.
func (s *Store) MaxViews() int { return s.maxViews }

// Get returns the user with the given id, or nil.
func (s *Store) Get(id string) *User {
	sh := s.shardOf(id)
	sh.mu.RLock()
	u := sh.users[id]
	sh.mu.RUnlock()
	return u
}

// GetOrCreate returns the user with the given id, creating it when absent.
// Inserts beyond MaxUsers fail with ErrTooManyUsers.
func (s *Store) GetOrCreate(id string) (*User, error) {
	sh := s.shardOf(id)
	sh.mu.RLock()
	u := sh.users[id]
	sh.mu.RUnlock()
	if u != nil {
		return u, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if u := sh.users[id]; u != nil {
		return u, nil
	}
	if int(s.users.Load()) >= s.maxUsers {
		s.tooMany.Add(1)
		return nil, ErrTooManyUsers
	}
	u = &User{ID: id}
	sh.users[id] = u
	s.users.Add(1)
	return u, nil
}

// Delete removes the user with the given id, releasing its view budget.
func (s *Store) Delete(id string) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	u := sh.users[id]
	if u != nil {
		delete(sh.users, id)
		s.users.Add(-1)
	}
	sh.mu.Unlock()
	if u == nil {
		return false
	}
	u.Mu.Lock()
	s.dropView(u)
	u.Names, u.sorted, u.Unresolved = nil, nil, nil
	u.Gone = true
	u.Mu.Unlock()
	s.deletes.Add(1)
	return true
}

// MarkMaterialized records that the caller (holding u.Mu) just set or grew
// u.View: the view joins (or moves to) the LRU front and its current
// footprint replaces the accounted one. The caller must invoke Rebalance
// after releasing u.Mu to enforce the bound.
func (s *Store) MarkMaterialized(u *User) {
	size := int64(u.View.Footprint())
	s.lruMu.Lock()
	if u.elem == nil {
		u.elem = s.lru.PushFront(u)
		s.views.Add(1)
	} else {
		s.lru.MoveToFront(u.elem)
	}
	s.lruMu.Unlock()
	s.viewBytes.Add(size - u.accBytes)
	u.accBytes = size
}

// Touch moves u's materialized view to the LRU front on a query hit.
func (s *Store) Touch(u *User) {
	s.lruMu.Lock()
	if u.elem != nil {
		s.lru.MoveToFront(u.elem)
	}
	s.lruMu.Unlock()
}

// dropView removes u from the LRU and clears its view. Callers hold u.Mu.
func (s *Store) dropView(u *User) {
	s.viewBytes.Add(-u.accBytes)
	u.accBytes = 0
	s.lruMu.Lock()
	if u.elem != nil {
		s.lru.Remove(u.elem)
		u.elem = nil
		s.views.Add(-1)
	}
	s.lruMu.Unlock()
	u.View = nil
}

// Rebalance dematerializes least-recently-queried views until the budget
// holds. It locks one victim at a time and never holds the LRU lock across
// a user lock, so callers must not hold any user lock. The budget can be
// transiently exceeded between a materialization and its Rebalance — benign
// by design (the overshoot is bounded by the number of in-flight queries).
func (s *Store) Rebalance() {
	for int(s.views.Load()) > s.maxViews {
		s.lruMu.Lock()
		back := s.lru.Back()
		s.lruMu.Unlock()
		if back == nil {
			return
		}
		u := back.Value.(*User)
		u.Mu.Lock()
		// The victim may have been touched, re-materialized, or deleted
		// since the unlocked peek; dropView re-checks under both locks.
		if u.elem == back {
			s.dropView(u)
			s.evictions.Add(1)
		}
		u.Mu.Unlock()
	}
}

// NoteHit counts a query served from a valid materialized view.
func (s *Store) NoteHit() { s.hits.Add(1) }

// NoteAdvance counts a view carried across a same-lineage epoch extension.
func (s *Store) NoteAdvance() { s.advances.Add(1) }

// NoteRebuild counts a view rebuilt after a lineage change.
func (s *Store) NoteRebuild() { s.rebuilds.Add(1) }

// NoteCold counts a query that materialized a view from scratch.
func (s *Store) NoteCold() { s.cold.Add(1) }

// NoteAppends counts n post-dedup appended actions.
func (s *Store) NoteAppends(n int) { s.appends.Add(uint64(n)) }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Users:     s.users.Load(),
		Views:     s.views.Load(),
		Hits:      s.hits.Load(),
		Advances:  s.advances.Load(),
		Rebuilds:  s.rebuilds.Load(),
		Cold:      s.cold.Load(),
		Evictions: s.evictions.Load(),
		Appends:   s.appends.Load(),
		Deletes:   s.deletes.Load(),
		TooMany:   s.tooMany.Load(),
		ViewBytes: s.viewBytes.Load(),
	}
}

// Range calls fn for every user until it returns false. Iteration takes one
// shard read lock at a time and observes a weakly consistent snapshot.
func (s *Store) Range(fn func(*User) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		users := make([]*User, 0, len(sh.users))
		for _, u := range sh.users {
			users = append(users, u)
		}
		sh.mu.RUnlock()
		for _, u := range users {
			if !fn(u) {
				return
			}
		}
	}
}
