package userstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/testlib"
)

func TestAppendNamesDedup(t *testing.T) {
	u := &User{ID: "u1"}
	if got := u.AppendNames([]string{"b", "a", "b", "c"}); !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Fatalf("added = %v", got)
	}
	if got := u.AppendNames([]string{"c", "d", "a"}); !reflect.DeepEqual(got, []string{"d"}) {
		t.Fatalf("second added = %v", got)
	}
	if want := []string{"b", "a", "c", "d"}; !reflect.DeepEqual(u.Names, want) {
		t.Fatalf("Names = %v, want %v", u.Names, want)
	}
	// Replaying the added suffixes into a fresh user reproduces the history.
	r := &User{ID: "r"}
	r.AppendNames([]string{"b", "a", "c"})
	r.AppendNames([]string{"d"})
	if !reflect.DeepEqual(r.Names, u.Names) {
		t.Fatalf("replay = %v, want %v", r.Names, u.Names)
	}
}

func TestCapacityAndDelete(t *testing.T) {
	s := New(Options{MaxUsers: 2, Shards: 4})
	if _, err := s.GetOrCreate("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrCreate("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrCreate("c"); err != ErrTooManyUsers {
		t.Fatalf("over-capacity insert: err = %v", err)
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("delete semantics")
	}
	if _, err := s.GetOrCreate("c"); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	st := s.Stats()
	if st.Users != 2 || st.Deletes != 1 || st.TooMany != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Get("nope") != nil {
		t.Fatal("Get of absent user")
	}
}

func TestViewLRUEviction(t *testing.T) {
	lib := testlib.PaperLibrary()
	s := New(Options{MaxUsers: 100, MaxViews: 2, Shards: 1})
	mat := func(id string) *User {
		u, err := s.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		u.Mu.Lock()
		u.View = strategy.NewCounterView(lib, []core.ActionID{0})
		s.MarkMaterialized(u)
		u.Mu.Unlock()
		s.Rebalance()
		return u
	}
	u1, u2 := mat("u1"), mat("u2")
	s.Touch(u1) // u2 becomes the LRU victim
	u3 := mat("u3")
	if u2.View != nil {
		t.Fatal("LRU victim kept its view")
	}
	if u1.View == nil || u3.View == nil {
		t.Fatal("wrong victim evicted")
	}
	st := s.Stats()
	if st.Views != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Deleting a materialized user releases its budget.
	s.Delete("u3")
	if got := s.Stats().Views; got != 1 {
		t.Fatalf("views after delete = %d", got)
	}
	if s.Stats().ViewBytes <= 0 {
		t.Fatalf("view bytes = %d", s.Stats().ViewBytes)
	}
}

func TestConcurrentChurn(t *testing.T) {
	lib := testlib.PaperLibrary()
	s := New(Options{MaxUsers: 1 << 10, MaxViews: 8, Shards: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("u%d", (w*7+i)%32)
				u, err := s.GetOrCreate(id)
				if err != nil {
					t.Error(err)
					return
				}
				u.Mu.Lock()
				u.AppendNames([]string{fmt.Sprintf("a%d", i%5)})
				if u.View == nil {
					u.View = strategy.NewCounterView(lib, nil)
				}
				s.MarkMaterialized(u)
				u.Mu.Unlock()
				s.Rebalance()
				if i%17 == 0 {
					s.Delete(id)
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if int(st.Views) > s.MaxViews() {
		t.Fatalf("views %d exceed budget %d after quiescence", st.Views, s.MaxViews())
	}
	n := 0
	s.Range(func(u *User) bool { n++; return true })
	if n != s.Len() {
		t.Fatalf("Range saw %d users, Len() = %d", n, s.Len())
	}
}
