package hybrid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"goalrec/internal/baseline"
	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
	"goalrec/internal/testlib"
)

func acts(v ...core.ActionID) []core.ActionID { return v }

// paperFeatures assigns the six actions of the paper fixture to three
// feature groups: {a1,a2} share feature 0, {a3,a4} feature 1, {a5,a6}
// feature 2.
func paperFeatures() *baseline.Features {
	return baseline.NewFeatures([][]baseline.FeatureID{
		{0}, {0}, {1}, {1}, {2}, {2},
	}, 3)
}

func TestName(t *testing.T) {
	lib := testlib.PaperLibrary()
	r := New(strategy.NewBreadth(lib), paperFeatures(), 0.5)
	if got := r.Name(); got != "hybrid-breadth-a0.50" {
		t.Errorf("Name = %q", got)
	}
}

func TestAlphaClamped(t *testing.T) {
	lib := testlib.PaperLibrary()
	feats := paperFeatures()
	if r := New(strategy.NewBreadth(lib), feats, -1); r.alpha != 0 {
		t.Errorf("alpha = %v, want 0", r.alpha)
	}
	if r := New(strategy.NewBreadth(lib), feats, 7); r.alpha != 1 {
		t.Errorf("alpha = %v, want 1", r.alpha)
	}
}

func TestAlphaOneMatchesGoalOrder(t *testing.T) {
	lib := testlib.PaperLibrary()
	goal := strategy.NewBreadth(lib)
	hyb := New(strategy.NewBreadth(lib), paperFeatures(), 1)
	h := acts(0, 1)
	want := strategy.Actions(goal.Recommend(h, 4))
	got := strategy.Actions(hyb.Recommend(h, 4))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("alpha=1 order %v != goal order %v", got, want)
	}
}

func TestAlphaZeroFollowsContent(t *testing.T) {
	lib := testlib.PaperLibrary()
	hyb := New(strategy.NewBreadth(lib), paperFeatures(), 0)
	// H = {a1}: candidates a2..a6. With pure content, a2 (sharing a1's
	// feature) must rank first.
	got := hyb.Recommend(acts(0), 5)
	if got[0].Action != 1 {
		t.Errorf("alpha=0 top = %v, want a2 (feature sibling of a1)", got[0])
	}
}

func TestBlendPromotesFeatureSiblings(t *testing.T) {
	lib := testlib.PaperLibrary()
	// With Breadth alone on H={a1,a2}, a3 scores 3 and a6 scores 2
	// (see the strategy tests). a6 shares a feature with nothing in H while
	// a3 doesn't either; use H={a1} where breadth gives a2=1,a3=2(p1,p3
	// overlap 1 each)... keep it simple: verify the blend is monotone in
	// alpha for a fixed candidate.
	feats := paperFeatures()
	h := acts(0)
	scoreOf := func(alpha float64, a core.ActionID) float64 {
		for _, s := range New(strategy.NewBreadth(lib), feats, alpha).Recommend(h, -1) {
			if s.Action == a {
				return s.Score
			}
		}
		t.Fatalf("action %d missing at alpha %v", a, alpha)
		return 0
	}
	// a2 is a1's feature sibling: lowering alpha (more content weight) must
	// not lower its score relative to the feature-disjoint a5.
	gap0 := scoreOf(0.2, 1) - scoreOf(0.2, 4)
	gap1 := scoreOf(0.9, 1) - scoreOf(0.9, 4)
	if gap0 <= gap1-1e-12 {
		t.Errorf("content weight did not widen the sibling gap: %v vs %v", gap0, gap1)
	}
}

func TestEmptyCases(t *testing.T) {
	lib := testlib.PaperLibrary()
	hyb := New(strategy.NewBreadth(lib), paperFeatures(), 0.5)
	if got := hyb.Recommend(nil, 5); got != nil {
		t.Errorf("empty activity produced %v", got)
	}
	if got := hyb.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	if got := hyb.Recommend(acts(42), 5); got != nil {
		t.Errorf("unknown action produced %v", got)
	}
}

func TestHybridInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(testlib.RandomLibrary(r, 1+r.Intn(60), 20, 10, 5))
			v[1] = reflect.ValueOf(testlib.RandomActivity(r, 20, 4))
			v[2] = reflect.ValueOf(r.Float64())
			v[3] = reflect.ValueOf(1 + r.Intn(10))
		},
	}
	f := func(lib *core.Library, h []core.ActionID, alpha float64, k int) bool {
		feats := make([][]baseline.FeatureID, lib.NumActions())
		for i := range feats {
			feats[i] = []baseline.FeatureID{int32(i % 4)}
		}
		hyb := New(strategy.NewBreadth(lib), baseline.NewFeatures(feats, 4), alpha)
		got := hyb.Recommend(h, k)
		if len(got) > k {
			return false
		}
		hs := intset.FromUnsorted(intset.Clone(h))
		seen := map[core.ActionID]bool{}
		for _, s := range got {
			if intset.Contains(hs, s.Action) || seen[s.Action] {
				return false
			}
			seen[s.Action] = true
			if s.Score < -1e-9 || s.Score > 1+1e-9 {
				return false // blended scores live in [0, 1]
			}
		}
		return reflect.DeepEqual(got, hyb.Recommend(h, k))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
