// Package hybrid implements the paper's future-work direction (Section 7):
// recommenders that enhance the goal-based mechanisms with user preferences
// over domain-specific characteristics, i.e. hybrid goal-based +
// content-based ranking.
//
// The combiner min-max normalizes the goal-based scores of the candidate
// pool into [0, 1], computes the content similarity of every candidate to
// the feature profile of the user activity, and ranks by
//
//	score(a) = α · goal(a) + (1 − α) · content(a)
//
// α = 1 degenerates to the wrapped goal-based strategy, α = 0 to pure
// content ranking over the goal-based candidate pool (still goal-aware:
// actions outside every shared implementation are never recommended).
package hybrid

import (
	"fmt"

	"goalrec/internal/baseline"
	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/vectorspace"
)

// Recommender blends a goal-based strategy with content similarity.
type Recommender struct {
	goal  strategy.Recommender
	feats *baseline.Features
	alpha float64
}

// New returns a hybrid recommender. alpha is clamped to [0, 1].
func New(goal strategy.Recommender, feats *baseline.Features, alpha float64) *Recommender {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return &Recommender{goal: goal, feats: feats, alpha: alpha}
}

// Name implements strategy.Recommender.
func (r *Recommender) Name() string {
	return fmt.Sprintf("hybrid-%s-a%.2f", r.goal.Name(), r.alpha)
}

// Recommend implements strategy.Recommender: it pulls the wrapped strategy's
// full candidate ranking, normalizes it, blends in the content similarity to
// the activity's feature profile, and returns the re-ranked top k.
func (r *Recommender) Recommend(activity []core.ActionID, k int) []strategy.ScoredAction {
	if k == 0 {
		return nil
	}
	// Ask the goal strategy for its entire ranking (k < 0 means "all") so
	// the content signal can promote candidates from beyond the top k.
	pool := r.goal.Recommend(activity, -1)
	if len(pool) == 0 {
		return nil
	}

	// Min-max normalize the goal scores over the candidate pool.
	lo, hi := pool[0].Score, pool[0].Score
	for _, s := range pool[1:] {
		if s.Score < lo {
			lo = s.Score
		}
		if s.Score > hi {
			hi = s.Score
		}
	}
	span := hi - lo

	profile := r.profile(activity)
	out := make([]strategy.ScoredAction, len(pool))
	for i, s := range pool {
		goalScore := 1.0
		if span > 0 {
			goalScore = (s.Score - lo) / span
		}
		content := vectorspace.CosineSimilarity(profile, r.feats.Vector(s.Action))
		out[i] = strategy.ScoredAction{
			Action: s.Action,
			Score:  r.alpha*goalScore + (1-r.alpha)*content,
		}
	}
	return strategy.TopK(out, k)
}

// profile sums the feature vectors of the activity's actions.
func (r *Recommender) profile(activity []core.ActionID) vectorspace.Vector {
	var p vectorspace.Vector
	for _, a := range activity {
		p = p.Add(r.feats.Vector(a))
	}
	return p
}
