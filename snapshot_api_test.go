package goalrec

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

func snapshotAPILibrary(t *testing.T) *Library {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 120; i++ {
		if err := b.AddImplementation(
			fmt.Sprintf("goal-%d", i%11),
			fmt.Sprintf("act-%d", i%23),
			fmt.Sprintf("act-%d", (i*3)%23),
			fmt.Sprintf("act-%d", (i*5)%31),
		); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestSaveOpenSnapshotFile(t *testing.T) {
	lib := snapshotAPILibrary(t)
	activity := []string{"act-1", "act-3", "act-5"}
	for _, compress := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "lib.gsnp")
		if err := lib.SaveSnapshotFile(path, compress); err != nil {
			t.Fatal(err)
		}
		snap, err := OpenSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := snap.Library()
		if got.NumImplementations() != lib.NumImplementations() {
			t.Fatalf("compress=%v: %d implementations, want %d", compress, got.NumImplementations(), lib.NumImplementations())
		}
		for _, s := range []Strategy{FocusCompleteness, Breadth, BestMatch} {
			want := lib.MustRecommender(s).Recommend(activity, 8)
			have := got.MustRecommender(s).Recommend(activity, 8)
			if !reflect.DeepEqual(have, want) {
				t.Fatalf("compress=%v: %s rankings differ across snapshot", compress, s)
			}
		}
		if err := snap.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// LoadLibraryFile must route "GSNP" files to the mmap loader while keeping
// JSON and legacy-binary sniffing intact.
func TestLoadLibraryFileSniffsSnapshot(t *testing.T) {
	lib := snapshotAPILibrary(t)
	path := filepath.Join(t.TempDir(), "lib.gsnp")
	if err := lib.SaveSnapshotFile(path, true); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLibraryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumImplementations() != lib.NumImplementations() ||
		len(got.Actions()) != len(lib.Actions()) {
		t.Fatal("snapshot loaded via LoadLibraryFile differs")
	}
}
