package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSplitActivity(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"potatoes,carrots", []string{"carrots", "potatoes"}},
		{" a , b ,", []string{"a", "b"}},
		{"", nil},
		{",,", nil},
	}
	for _, tt := range tests {
		if got := splitActivity(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("splitActivity(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus", "-library", "x"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"stats"}); err == nil {
		t.Error("missing -library accepted")
	}
	if err := run([]string{"recommend", "-library", "/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	libPath := filepath.Join(dir, "lib.jsonl")
	lib := `{"goal":"olivier salad","actions":["potatoes","carrots","pickles"]}
{"goal":"mashed potatoes","actions":["potatoes","nutmeg"]}
`
	if err := os.WriteFile(libPath, []byte(lib), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"stats", "-library", libPath},
		{"spaces", "-library", libPath, "-activity", "potatoes"},
		{"recommend", "-library", libPath, "-activity", "potatoes,carrots", "-strategy", "focus-cmp", "-k", "3"},
		{"recommend", "-library", libPath, "-activity", "potatoes", "-strategy", "best-match", "-metric", "euclidean"},
		{"graph", "-library", libPath, "-max-impls", "1"},
		{"dedupe", "-library", libPath, "-threshold", "0.9"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	// Validation errors.
	if err := run([]string{"recommend", "-library", libPath}); err == nil {
		t.Error("missing -activity accepted")
	}
	if err := run([]string{"recommend", "-library", libPath, "-activity", "x", "-strategy", "magic"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunExtract(t *testing.T) {
	dir := t.TempDir()
	storiesPath := filepath.Join(dir, "stories.jsonl")
	outPath := filepath.Join(dir, "lib.jsonl")
	stories := `{"goal":"get fit","text":"I joined a gym. I started jogging."}
{"goal":"quiet","text":"nothing at all"}
`
	if err := os.WriteFile(storiesPath, []byte(stories), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runExtract([]string{"-stories", storiesPath, "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "get fit") {
		t.Errorf("extracted library missing goal: %s", data)
	}
	if err := runExtract(nil); err == nil {
		t.Error("missing -stories accepted")
	}
	if err := runExtract([]string{"-stories", "/does/not/exist"}); err == nil {
		t.Error("missing stories file accepted")
	}
	// Malformed JSON must be rejected.
	badPath := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(badPath, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runExtract([]string{"-stories", badPath}); err == nil {
		t.Error("malformed stories accepted")
	}
}
