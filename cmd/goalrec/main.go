// Command goalrec recommends actions from a goal-implementation library.
//
// Usage:
//
//	goalrec stats     -library lib.jsonl
//	goalrec spaces    -library lib.jsonl -activity "potatoes,carrots"
//	goalrec recommend -library lib.jsonl -activity "potatoes,carrots" [-strategy breadth] [-k 10]
//	goalrec graph     -library lib.jsonl [-max-impls 100] > model.dot
//	goalrec dedupe    -library lib.jsonl [-threshold 0.8] > deduped.jsonl
//	goalrec extract   -stories stories.jsonl -out lib.jsonl
//
// The library file is JSON lines: one {"goal": ..., "actions": [...]} object
// per line. The activity is a comma-separated list of action names. Story
// files are JSON lines of {"goal": ..., "text": ...} objects; extract runs
// the text-to-implementation pipeline over them.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"goalrec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "goalrec:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: goalrec <stats|spaces|recommend|extract> [flags]")
	}
	cmd, rest := args[0], args[1:]
	if cmd == "extract" {
		return runExtract(rest)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	libPath := fs.String("library", "", "path to the JSON-lines library file")
	activity := fs.String("activity", "", "comma-separated action names (the user activity)")
	strategyName := fs.String("strategy", "breadth", "focus-cmp | focus-cl | breadth | best-match")
	metric := fs.String("metric", "cosine", "best-match distance: cosine | euclidean | manhattan | jaccard")
	k := fs.Int("k", 10, "recommendation list length")
	maxImpls := fs.Int("max-impls", 100, "graph: cap on rendered implementations (0 = all)")
	threshold := fs.Float64("threshold", 1, "dedupe: Jaccard threshold (1 = exact duplicates only)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *libPath == "" {
		return fmt.Errorf("%s: -library is required", cmd)
	}
	lib, err := goalrec.LoadLibraryFile(*libPath)
	if err != nil {
		return err
	}

	switch cmd {
	case "stats":
		fmt.Println(lib.Stats())
		return nil
	case "graph":
		return lib.ExportDOT(os.Stdout, *maxImpls)
	case "dedupe":
		out, stats := lib.Deduplicate(*threshold)
		fmt.Fprintf(os.Stderr, "kept %d, dropped %d exact and %d near duplicates\n",
			stats.Kept, stats.ExactDuplicates, stats.NearDuplicates)
		return out.SaveJSON(os.Stdout)
	case "spaces":
		acts := splitActivity(*activity)
		if len(acts) == 0 {
			return fmt.Errorf("spaces: -activity is required")
		}
		fmt.Println("goal space:")
		progress := lib.GoalProgress(acts)
		goals := lib.GoalSpace(acts)
		for _, g := range goals {
			fmt.Printf("  %-40s %5.1f%% complete\n", g, 100*progress[g])
		}
		fmt.Println("action space:")
		for _, a := range lib.ActionSpace(acts) {
			fmt.Printf("  %s\n", a)
		}
		return nil
	case "recommend":
		acts := splitActivity(*activity)
		if len(acts) == 0 {
			return fmt.Errorf("recommend: -activity is required")
		}
		rec, err := lib.Recommender(goalrec.Strategy(*strategyName), goalrec.WithDistanceMetric(*metric))
		if err != nil {
			return err
		}
		list := rec.Recommend(acts, *k)
		if len(list) == 0 {
			fmt.Println("no recommendations: the activity matches no goal implementation")
			return nil
		}
		for i, r := range list {
			fmt.Printf("%2d. %-40s score=%.4f\n", i+1, r.Action, r.Score)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (want stats, spaces, recommend, graph, dedupe or extract)", cmd)
	}
}

// runExtract turns a JSON-lines story file into a JSON-lines library.
func runExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	storiesPath := fs.String("stories", "", "path to the JSON-lines stories file ({\"goal\", \"text\"} per line)")
	outPath := fs.String("out", "", "output library path (default: stdout)")
	keepVerbless := fs.Bool("keep-verbless", false, "also keep steps without a recognized verb")
	maxWords := fs.Int("max-phrase-words", 4, "canonical action phrase length cap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storiesPath == "" {
		return errors.New("extract: -stories is required")
	}
	f, err := os.Open(*storiesPath)
	if err != nil {
		return err
	}
	defer f.Close()

	var stories []goalrec.Story
	dec := json.NewDecoder(f)
	for {
		var s struct {
			Goal string `json:"goal"`
			Text string `json:"text"`
		}
		if err := dec.Decode(&s); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("extract: parsing story %d: %w", len(stories), err)
		}
		stories = append(stories, goalrec.Story{Goal: s.Goal, Text: s.Text})
	}

	lib, kept := goalrec.BuildFromStories(stories, goalrec.ExtractOptions{
		MaxPhraseWords:    *maxWords,
		KeepVerblessSteps: *keepVerbless,
	})
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		g, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer g.Close()
		out = g
	}
	if err := lib.SaveJSON(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "extracted %d/%d stories: %s\n", kept, len(stories), lib.Stats())
	return nil
}

func splitActivity(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	sort.Strings(out)
	return out
}
