// Command goalrecd serves goal-based recommendations over HTTP.
//
//	goalrecd -library recipes.jsonl -addr :8080 -watch 10s
//
// Endpoints (JSON):
//
//	GET  /healthz
//	GET  /readyz                  readiness: 503 while draining for shutdown
//	GET  /v1/stats
//	GET  /v1/metrics              per-endpoint request/error + lifecycle counters
//	POST /v1/recommend            {"activity": ["potatoes"], "strategy": "breadth", "k": 10}
//	POST /v1/spaces               {"activity": ["potatoes"]}
//	POST /v1/explain              {"activity": ["potatoes"], "action": "pickles"}
//	POST /v1/implementations      live-ingest a batch of implementations
//	POST /v1/reload               re-read the library file and swap it in
//	POST /v1/users/{id}/actions   append to a stored per-user history
//	GET  /v1/users/{id}/recommend score a stored history (materialized view)
//	DELETE /v1/users/{id}         forget a user
//
// The daemon always serves the per-user store; -user-capacity caps tracked
// users and -user-views caps concurrently materialized counter views (the
// LRU bound on per-user scoring state). With -snapshot-dir user appends and
// deletes are journaled to the same WAL as ingests and recovered on restart.
//
// Every response carries the epoch it was answered from; ingests and
// reloads advance the epoch without interrupting in-flight requests. With
// -watch the daemon polls the library file and hot-swaps it when it
// changes; a file that fails to load is logged and the current epoch keeps
// serving, with exponential-backoff retries until the load heals.
//
// With -snapshot-dir the daemon is durable: it recovers from the newest
// memory-mapped snapshot in the directory plus the ingest WAL's tail, then
// journals every /v1/implementations batch to the WAL before applying it.
// Restarting the process resumes at the exact epoch it last acknowledged.
// -library then becomes an optional seed, used only when the directory is
// empty. -wal-sync fsyncs each WAL append; -compact-wal-bytes sets the WAL
// size that triggers background compaction into a fresh snapshot;
// -snapshot-compress writes snapshots with block-compressed postings;
// -scrub-interval re-verifies snapshot checksums and WAL frame CRCs
// periodically, quarantining corrupt snapshots (renamed to *.quarantine,
// never deleted) and falling back a generation. -snapshot-diff makes
// compaction write incremental diffs (*.gsnpd) against the last full
// snapshot, with a periodic full bounding the chain; recovery materializes
// base+diff losslessly and falls back to the base if a diff rots.
//
// Serving larger-than-RAM libraries: -block-cache-bytes sizes the shared
// decoded-block cache that holds hot decompressed posting rows (64 MiB by
// default; counters in /v1/metrics under "block_cache"), -madvise toggles
// the paging hints applied to snapshot mappings, and -snapshot-warm faults
// the recovered snapshot into the page cache up front when predictable
// first-query latency matters more than startup time.
//
// Storage faults degrade the store instead of killing it: a persistent
// write failure flips it read-only — ingests and user writes answer 503
// with Retry-After while reads keep serving — and a background write probe
// restores writes automatically once the disk heals. /readyz reports
// "degraded" (still 200) and both /readyz and /v1/metrics carry a "storage"
// block with the mode, last error and quarantined files.
//
// -request-timeout bounds every request (504 on expiry) and -max-inflight
// caps concurrent expensive requests, shedding the excess as 503 +
// Retry-After.
//
// -pprof-addr starts a second listener serving net/http/pprof (off by
// default). Keeping the profiler off the serving address means it is never
// exposed to recommendation traffic and can be bound to localhost while the
// API listens publicly.
//
// The process shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// 503 (draining) so load balancers stop routing here, then in-flight
// requests get up to 10s to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"goalrec"
	"goalrec/internal/cluster"
	"goalrec/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "goalrecd:", err)
		os.Exit(1)
	}
}

func run() error {
	libPath := flag.String("library", "", "path to the JSON-lines library file")
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "disable request logging")
	watch := flag.Duration("watch", 0, "poll the library file at this interval and hot-swap on change (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline; expired requests answer 504 (0 disables)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent expensive requests; excess is shed as 503 (0 disables)")
	admissionWait := flag.Duration("admission-wait", 10*time.Millisecond, "how long an over-limit request may wait for a slot before being shed (needs -max-inflight)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	pruning := flag.Bool("pruning", false, "serve with the bound-driven pruned kernels (rankings unchanged; counters in /v1/metrics)")
	impactOrdering := flag.Bool("impact-ordering", false, "re-lay-out each loaded library in impact order for pruning effectiveness")
	snapshotDir := flag.String("snapshot-dir", "", "durable store directory: mmap snapshots + ingest WAL (empty disables persistence)")
	walSync := flag.Bool("wal-sync", false, "fsync every WAL append (needs -snapshot-dir)")
	compactWALBytes := flag.Int64("compact-wal-bytes", 0, "WAL size that triggers background compaction into a snapshot; 0 selects the default (needs -snapshot-dir)")
	snapshotCompress := flag.Bool("snapshot-compress", false, "write snapshots with block-compressed posting lists (needs -snapshot-dir)")
	scrubInterval := flag.Duration("scrub-interval", 0, "re-verify snapshot checksums and WAL CRCs at this interval, quarantining corrupt snapshots; 0 disables the periodic scrub (needs -snapshot-dir; the open-time scrub always runs)")
	userCapacity := flag.Int("user-capacity", 0, "max tracked users in the per-user store; 0 selects the default")
	userViews := flag.Int("user-views", 0, "max concurrently materialized per-user counter views; 0 selects the default")
	blockCacheBytes := flag.Int64("block-cache-bytes", 64<<20, "byte budget of the shared decoded-block cache serving compressed posting rows; 0 disables it")
	madvise := flag.Bool("madvise", true, "apply paging hints (MADV_RANDOM/WILLNEED) when snapshots open; no-op off Linux")
	snapshotDiff := flag.Bool("snapshot-diff", false, "compact into incremental snapshot diffs against the last full snapshot, with periodic fulls (needs -snapshot-dir)")
	snapshotWarm := flag.Bool("snapshot-warm", false, "fault the recovered snapshot fully into the page cache at startup instead of demand paging (needs -snapshot-dir)")
	role := flag.String("role", "", `cluster role: "" (single node), "coordinator" (scatter-gather front end over -peers) or "worker" (shard server on -cluster-addr)`)
	clusterAddr := flag.String("cluster-addr", "", "cluster comms listen address (worker role)")
	peersFlag := flag.String("peers", "", "comma-separated worker comms addresses (coordinator role)")
	shardRange := flag.String("shard-range", "0:-1", `implementation range "lo:hi" this worker serves; hi -1 means "to the end of the library" (worker role)`)
	partialFailure := flag.String("partial-failure", "degraded", `coordinator policy when a shard cannot answer: "degraded" (serve the reachable shards, flagged) or "fail" (fail the query)`)
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "coordinator-to-worker heartbeat interval")
	scatterTimeout := flag.Duration("scatter-timeout", 0, "per-scatter deadline on worker round-trips (0 disables; coordinator role)")
	flag.Parse()
	if *role == "coordinator" {
		// The coordinator never scans, so it has no store; it needs only a
		// full copy of the artifact for name resolution.
		if *libPath == "" {
			return errors.New("-role coordinator needs -library")
		}
		policy, err := cluster.ParsePartialFailurePolicy(*partialFailure)
		if err != nil {
			return err
		}
		return runCoordinator(coordinatorOptions{
			addr:           *addr,
			libPath:        *libPath,
			peers:          splitPeers(*peersFlag),
			policy:         policy,
			heartbeat:      *heartbeat,
			scatterTimeout: *scatterTimeout,
			impactOrdering: *impactOrdering,
		})
	}
	if *role != "" && *role != "worker" {
		return fmt.Errorf("unknown -role %q (want \"\", \"coordinator\" or \"worker\")", *role)
	}
	if *role == "worker" && *clusterAddr == "" {
		return errors.New("-role worker needs -cluster-addr")
	}
	if *libPath == "" && *snapshotDir == "" {
		return errors.New("one of -library or -snapshot-dir is required")
	}
	if *watch > 0 && *libPath == "" {
		return errors.New("-watch needs -library")
	}
	goalrec.SetBlockCacheBytes(*blockCacheBytes)
	goalrec.SetSnapshotMadvise(*madvise)

	// loadLib is the single load path — initial load, /v1/reload and the
	// -watch loop all apply the same layout policy.
	loadLib := func(path string) (*goalrec.Library, error) {
		lib, err := goalrec.LoadLibraryFile(path)
		if err != nil {
			return nil, err
		}
		if *impactOrdering {
			lib = lib.ImpactOrdered()
		}
		return lib, nil
	}

	logger := log.New(os.Stderr, "goalrecd: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}

	var opts []server.Option
	if *libPath != "" {
		opts = append(opts, server.WithReloader(func() (*goalrec.Library, error) {
			return loadLib(*libPath)
		}))
	}
	if *pruning {
		opts = append(opts, server.WithPruning())
	}
	if *requestTimeout > 0 {
		opts = append(opts, server.WithRequestTimeout(*requestTimeout))
	}
	if *maxInflight > 0 {
		opts = append(opts, server.WithMaxInflight(*maxInflight), server.WithAdmissionWait(*admissionWait))
	}

	userOpts := goalrec.UserStoreOptions{MaxUsers: *userCapacity, MaxViews: *userViews}

	var api *server.Server
	var store *goalrec.Store
	var engine *goalrec.Engine
	if *snapshotDir != "" {
		var err error
		store, err = goalrec.OpenStore(*snapshotDir, goalrec.StoreOptions{
			SyncWAL:           *walSync,
			CompactAtWALBytes: *compactWALBytes,
			CompressPostings:  *snapshotCompress,
			SnapshotDiff:      *snapshotDiff,
			WarmSnapshot:      *snapshotWarm,
			ScrubInterval:     *scrubInterval,
			Logger:            logger,
			Users:             userOpts,
		})
		if err != nil {
			return err
		}
		engine = store.Engine()
		logger.Printf("recovered store %s at epoch %d: %s", *snapshotDir, engine.Epoch(), engine.Snapshot().Stats())
		// -library seeds an empty store only; a recovered lineage wins over
		// the seed file so restarts never roll acknowledged ingests back.
		if engine.Len() == 0 && *libPath != "" {
			lib, err := loadLib(*libPath)
			if err != nil {
				store.Close()
				return err
			}
			engine.Swap(lib)
			if err := store.Err(); err != nil {
				store.Close()
				return err
			}
			logger.Printf("seeded store from %s: %s", *libPath, lib.Stats())
		}
		if n := store.Users().Len(); n > 0 {
			logger.Printf("recovered %d users from the WAL", n)
		}
		opts = append(opts, server.WithUserStore(store.Users()), server.WithStore(store))
		api = server.NewFromEngine(engine, reqLogger, opts...)
	} else {
		lib, err := loadLib(*libPath)
		if err != nil {
			return err
		}
		logger.Printf("loaded library: %s", lib.Stats())
		engine = goalrec.NewEngineFromLibrary(lib)
		opts = append(opts, server.WithUserStore(goalrec.NewUserStore(engine, userOpts)))
		api = server.NewFromEngine(engine, reqLogger, opts...)
	}

	// In the worker role the daemon additionally serves its shard over the
	// cluster comms protocol — same engine, same epochs, so the node keeps
	// its full single-node HTTP surface (handy for debugging a shard
	// directly) while answering coordinator scatters.
	var clusterWorker *cluster.Worker
	if *role == "worker" {
		lo, hi, err := parseShardRange(*shardRange)
		if err != nil {
			return err
		}
		wcfg := cluster.WorkerConfig{Lo: lo, Hi: hi, Pruning: *pruning, Logger: logger}
		if *libPath != "" {
			wcfg.Reload = func() (*goalrec.Library, error) { return loadLib(*libPath) }
		}
		clusterWorker = cluster.NewWorker(engine, wcfg)
		ln, err := net.Listen("tcp", *clusterAddr)
		if err != nil {
			return fmt.Errorf("cluster listener: %w", err)
		}
		go func() {
			logger.Printf("cluster worker serving [%d, %d) on %s", lo, hi, *clusterAddr)
			clusterWorker.Serve(ln)
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// The profiler gets its own mux and listener: nothing pprof-related
		// is ever routable through the serving address.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pmux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	watchDone := make(chan struct{})
	stopWatch := func() {}
	if *watch > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		stopWatch = cancel
		w := newLibraryWatcher(api, logger, *libPath, *watch)
		w.load = loadLib
		go func() {
			defer close(watchDone)
			w.run(ctx)
		}()
	} else {
		close(watchDone)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	// closeStore runs only after the HTTP server has fully drained: readers
	// may hold mapped snapshot memory until their requests finish.
	closeStore := func() {
		if store == nil {
			return
		}
		if err := store.Close(); err != nil {
			logger.Printf("closing store: %v", err)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if clusterWorker != nil {
			clusterWorker.Close()
		}
		stopWatch()
		<-watchDone
		closeStore()
		return err
	case sig := <-stop:
		// Flip to draining first so /readyz tells load balancers to stop
		// routing here while in-flight requests finish.
		api.SetDraining(true)
		logger.Printf("received %v, draining and shutting down", sig)
		if clusterWorker != nil {
			clusterWorker.Close()
		}
		stopWatch()
		<-watchDone
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if pprofSrv != nil {
			_ = pprofSrv.Shutdown(ctx)
		}
		err := srv.Shutdown(ctx)
		closeStore()
		if err != nil {
			return err
		}
		return <-errCh
	}
}

// reloadTarget is the slice of *server.Server the watcher needs; tests
// substitute nothing — they use a real server — but the interface keeps
// the watcher honest about what it touches.
type reloadTarget interface {
	Epoch() uint64
	Swap(lib *goalrec.Library) uint64
	NoteReloadFailure() int64
	NoteReloadSuccess()
}

// libraryWatcher polls a library file and hot-swaps it into the server
// when it changes. Failures keep the current epoch serving and are retried
// with exponential backoff and jitter; transitions between healthy and
// failing are logged once, plus every logEveryNth failure while the streak
// lasts — a persistently broken file produces a heartbeat, not a log line
// per poll.
type libraryWatcher struct {
	target   reloadTarget
	logger   *log.Logger
	path     string
	interval time.Duration

	// Injection points for tests; production uses the os/goalrec defaults.
	load func(path string) (*goalrec.Library, error)
	stat func(path string) (os.FileInfo, error)

	logEveryNth int
	maxBackoff  time.Duration
	rng         *rand.Rand
}

func newLibraryWatcher(target reloadTarget, logger *log.Logger, path string, interval time.Duration) *libraryWatcher {
	return &libraryWatcher{
		target:      target,
		logger:      logger,
		path:        path,
		interval:    interval,
		load:        goalrec.LoadLibraryFile,
		stat:        os.Stat,
		logEveryNth: 5,
		maxBackoff:  32 * interval,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

type fileState struct {
	mtime time.Time
	size  int64
}

func (w *libraryWatcher) run(ctx context.Context) {
	var last fileState
	if fi, err := w.stat(w.path); err == nil {
		last = fileState{fi.ModTime(), fi.Size()}
	}
	backoff := w.interval
	failing := false
	for {
		delay := w.interval
		if failing {
			// Exponential backoff with ±20% jitter so a fleet of watchers
			// does not hammer a shared source in lockstep.
			delay = time.Duration(float64(backoff) * (0.8 + 0.4*w.rng.Float64()))
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}

		fi, err := w.stat(w.path)
		var lib *goalrec.Library
		if err == nil {
			cur := fileState{fi.ModTime(), fi.Size()}
			// While healthy, an unchanged file means nothing to do. While
			// failing, retry even an unchanged file: partial writes and
			// permission hiccups heal without the mtime moving.
			if cur == last && !failing {
				continue
			}
			last = cur
			lib, err = w.load(w.path)
		}
		if err != nil {
			streak := w.target.NoteReloadFailure()
			if !failing {
				failing = true
				backoff = w.interval
				w.logger.Printf("watch: %s failing: %v (keeping epoch %d)", w.path, err, w.target.Epoch())
			} else {
				backoff = min(2*backoff, w.maxBackoff)
				if w.logEveryNth > 0 && streak%int64(w.logEveryNth) == 0 {
					w.logger.Printf("watch: %s still failing after %d attempts: %v (keeping epoch %d)",
						w.path, streak, err, w.target.Epoch())
				}
			}
			continue
		}
		w.target.NoteReloadSuccess()
		epoch := w.target.Swap(lib)
		if failing {
			failing = false
			w.logger.Printf("watch: %s recovered", w.path)
		}
		w.logger.Printf("watch: swapped in %s (%d implementations) at epoch %d",
			w.path, lib.NumImplementations(), epoch)
	}
}
