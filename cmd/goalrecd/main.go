// Command goalrecd serves goal-based recommendations over HTTP.
//
//	goalrecd -library recipes.jsonl -addr :8080
//
// Endpoints (JSON):
//
//	GET  /healthz
//	GET  /v1/stats
//	GET  /v1/metrics     per-endpoint request/error counters
//	POST /v1/recommend   {"activity": ["potatoes"], "strategy": "breadth", "k": 10}
//	POST /v1/spaces      {"activity": ["potatoes"]}
//	POST /v1/explain     {"activity": ["potatoes"], "action": "pickles"}
//
// The process shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"goalrec"
	"goalrec/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "goalrecd:", err)
		os.Exit(1)
	}
}

func run() error {
	libPath := flag.String("library", "", "path to the JSON-lines library file")
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "disable request logging")
	flag.Parse()
	if *libPath == "" {
		return errors.New("-library is required")
	}

	lib, err := goalrec.LoadLibraryFile(*libPath)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "goalrecd: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	logger.Printf("loaded library: %s", lib.Stats())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(lib, reqLogger),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-errCh
	}
}
