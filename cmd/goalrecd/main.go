// Command goalrecd serves goal-based recommendations over HTTP.
//
//	goalrecd -library recipes.jsonl -addr :8080 -watch 10s
//
// Endpoints (JSON):
//
//	GET  /healthz
//	GET  /v1/stats
//	GET  /v1/metrics              per-endpoint request/error counters
//	POST /v1/recommend            {"activity": ["potatoes"], "strategy": "breadth", "k": 10}
//	POST /v1/spaces               {"activity": ["potatoes"]}
//	POST /v1/explain              {"activity": ["potatoes"], "action": "pickles"}
//	POST /v1/implementations      live-ingest a batch of implementations
//	POST /v1/reload               re-read the library file and swap it in
//
// Every response carries the epoch it was answered from; ingests and
// reloads advance the epoch without interrupting in-flight requests. With
// -watch the daemon polls the library file and hot-swaps it when it
// changes; a file that fails to load is logged and the current epoch keeps
// serving.
//
// The process shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"goalrec"
	"goalrec/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "goalrecd:", err)
		os.Exit(1)
	}
}

func run() error {
	libPath := flag.String("library", "", "path to the JSON-lines library file")
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "disable request logging")
	watch := flag.Duration("watch", 0, "poll the library file at this interval and hot-swap on change (0 disables)")
	flag.Parse()
	if *libPath == "" {
		return errors.New("-library is required")
	}

	lib, err := goalrec.LoadLibraryFile(*libPath)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "goalrecd: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	logger.Printf("loaded library: %s", lib.Stats())

	api := server.New(lib, reqLogger, server.WithReloader(func() (*goalrec.Library, error) {
		return goalrec.LoadLibraryFile(*libPath)
	}))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	watchDone := make(chan struct{})
	stopWatch := func() {}
	if *watch > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		stopWatch = cancel
		go func() {
			defer close(watchDone)
			watchLibrary(ctx, api, logger, *libPath, *watch)
		}()
	} else {
		close(watchDone)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		stopWatch()
		<-watchDone
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		stopWatch()
		<-watchDone
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-errCh
	}
}

// watchLibrary polls path every interval and swaps the served library when
// the file's mtime or size changes. A change that fails to load is logged
// and skipped — the server keeps answering from its current epoch — and the
// same file state is not retried until it changes again.
func watchLibrary(ctx context.Context, api *server.Server, logger *log.Logger, path string, interval time.Duration) {
	type fileState struct {
		mtime time.Time
		size  int64
	}
	var last fileState
	if fi, err := os.Stat(path); err == nil {
		last = fileState{fi.ModTime(), fi.Size()}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		fi, err := os.Stat(path)
		if err != nil {
			logger.Printf("watch: stat %s: %v (keeping epoch %d)", path, err, api.Epoch())
			continue
		}
		cur := fileState{fi.ModTime(), fi.Size()}
		if cur == last {
			continue
		}
		last = cur
		lib, err := goalrec.LoadLibraryFile(path)
		if err != nil {
			logger.Printf("watch: reload %s failed: %v (keeping epoch %d)", path, err, api.Epoch())
			continue
		}
		epoch := api.Swap(lib)
		logger.Printf("watch: swapped in %s (%d implementations) at epoch %d",
			path, lib.NumImplementations(), epoch)
	}
}
