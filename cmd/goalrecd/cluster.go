// Cluster-role wiring: -role worker adds a comms listener to the normal
// daemon (see main.go); -role coordinator runs the scatter-gather front end
// implemented in internal/cluster.
//
// A local 3-node cluster:
//
//	goalrecd -role worker -library recipes.jsonl -addr :8081 -cluster-addr :7071 -shard-range 0:1000 &
//	goalrecd -role worker -library recipes.jsonl -addr :8082 -cluster-addr :7072 -shard-range 1000:2000 &
//	goalrecd -role worker -library recipes.jsonl -addr :8083 -cluster-addr :7073 -shard-range 2000:-1 &
//	goalrecd -role coordinator -library recipes.jsonl -addr :8080 \
//	         -peers localhost:7071,localhost:7072,localhost:7073
//
// Every node loads the same artifact (the coordinator validates vocabulary
// checksums at registration, so a mismatched file is rejected up front) and
// the worker ranges must tile [0, NumImplementations) exactly. Rankings
// served by the coordinator are bit-identical to a single node serving the
// whole library; POST /v1/reload on the coordinator drives a cluster-wide
// two-phase snapshot swap.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"goalrec"
	"goalrec/internal/cluster"
)

// splitPeers parses the -peers comma list, dropping empty entries.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// parseShardRange parses "lo:hi"; hi may be -1 for "to the end".
func parseShardRange(s string) (lo, hi int, err error) {
	before, after, found := strings.Cut(s, ":")
	if !found {
		return 0, 0, fmt.Errorf("invalid -shard-range %q (want \"lo:hi\", hi -1 for open-ended)", s)
	}
	if lo, err = strconv.Atoi(before); err != nil || lo < 0 {
		return 0, 0, fmt.Errorf("invalid -shard-range %q: bad lo", s)
	}
	if hi, err = strconv.Atoi(after); err != nil || (hi < lo && hi != -1) {
		return 0, 0, fmt.Errorf("invalid -shard-range %q: bad hi", s)
	}
	return lo, hi, nil
}

// coordinatorOptions carries the -role coordinator flag set.
type coordinatorOptions struct {
	addr           string
	libPath        string
	peers          []string
	policy         cluster.PartialFailurePolicy
	heartbeat      time.Duration
	scatterTimeout time.Duration
	impactOrdering bool
}

// runCoordinator serves the scatter-gather front end: it owns a full copy
// of the artifact for name resolution, fans every query out to the shard
// workers and merges their partials into the single-node ranking.
func runCoordinator(o coordinatorOptions) error {
	if len(o.peers) == 0 {
		return errors.New("-role coordinator needs -peers")
	}
	logger := log.New(os.Stderr, "goalrecd: ", log.LstdFlags)
	loadLib := func() (*goalrec.Library, error) {
		lib, err := goalrec.LoadLibraryFile(o.libPath)
		if err != nil {
			return nil, err
		}
		if o.impactOrdering {
			lib = lib.ImpactOrdered()
		}
		return lib, nil
	}
	lib, err := loadLib()
	if err != nil {
		return err
	}
	logger.Printf("coordinator loaded library: %s", lib.Stats())

	co := cluster.NewCoordinator(goalrec.NewEngineFromLibrary(lib), cluster.CoordinatorConfig{
		Peers:          o.peers,
		PartialFailure: o.policy,
		ScatterTimeout: o.scatterTimeout,
		Reload:         loadLib,
		Logger:         logger,
	})
	stopHeartbeat := co.StartHeartbeat(o.heartbeat)
	handler := cluster.NewHTTPHandler(co)
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("coordinator listening on %s, %d workers, policy %q", o.addr, len(o.peers), o.policy)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		stopHeartbeat()
		co.Close()
		return err
	case sig := <-stop:
		handler.SetDraining(true)
		logger.Printf("received %v, draining and shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		stopHeartbeat()
		co.Close()
		if err != nil {
			return err
		}
		return <-errCh
	}
}
