package main

import (
	"bytes"
	"context"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goalrec"
	"goalrec/internal/faultinject"
	"goalrec/internal/server"
)

func watchTestLibrary(t *testing.T) *goalrec.Library {
	t.Helper()
	b := goalrec.NewBuilder()
	if err := b.AddImplementation("salad", "potatoes", "carrots"); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

type fakeInfo struct{ mtime time.Time }

func (f fakeInfo) Name() string       { return "fake.jsonl" }
func (f fakeInfo) Size() int64        { return 1 }
func (f fakeInfo) Mode() os.FileMode  { return 0 }
func (f fakeInfo) ModTime() time.Time { return f.mtime }
func (f fakeInfo) IsDir() bool        { return false }
func (f fakeInfo) Sys() interface{}   { return nil }

// TestWatcherBackoffAndRecovery scripts seven consecutive load failures
// followed by success and checks the whole failure-streak contract: the
// watcher keeps retrying (with backoff) even though the file state never
// changes again, logs the ok→failing transition once plus every-Nth
// heartbeats instead of a line per poll, notes each failure on the server,
// and on recovery resets the streak and swaps the new epoch in.
func TestWatcherBackoffAndRecovery(t *testing.T) {
	lib := watchTestLibrary(t)
	rl := &faultinject.Reloader{FailFirst: 7, Lib: lib}
	srv := server.New(lib, nil)
	epoch0 := srv.Epoch()

	var buf bytes.Buffer
	w := newLibraryWatcher(srv, log.New(&buf, "", 0), "fake.jsonl", time.Millisecond)
	w.maxBackoff = 4 * time.Millisecond
	w.logEveryNth = 3
	w.load = func(string) (*goalrec.Library, error) { return rl.Load() }
	var stats atomic.Int64
	t0 := time.Unix(1000, 0)
	w.stat = func(string) (os.FileInfo, error) {
		// First stat (baseline) sees t0; every later stat sees a changed
		// file, which triggers the first load. The state then never
		// changes again, so continued retries prove the failing-mode
		// retry path.
		if stats.Add(1) == 1 {
			return fakeInfo{t0}, nil
		}
		return fakeInfo{t0.Add(time.Second)}, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.run(ctx)
	}()

	deadline := time.After(10 * time.Second)
	for srv.Epoch() == epoch0 {
		select {
		case <-deadline:
			cancel()
			<-done
			t.Fatalf("watcher never recovered; failures=%d log:\n%s", rl.Failures(), buf.String())
		case <-time.After(time.Millisecond):
		}
	}
	// Let a few healthy, unchanged polls pass: they must be silent no-ops.
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done

	if rl.Failures() != 7 {
		t.Errorf("failures = %d, want 7", rl.Failures())
	}
	if got := srv.ReloadFailureStreak(); got != 0 {
		t.Errorf("streak after recovery = %d, want 0", got)
	}

	logs := buf.String()
	if n := strings.Count(logs, "fake.jsonl failing:"); n != 1 {
		t.Errorf("ok->failing logged %d times, want 1:\n%s", n, logs)
	}
	if n := strings.Count(logs, "still failing after"); n != 2 {
		t.Errorf("heartbeats = %d, want 2 (streaks 3 and 6):\n%s", n, logs)
	}
	if !strings.Contains(logs, "still failing after 3 attempts") ||
		!strings.Contains(logs, "still failing after 6 attempts") {
		t.Errorf("missing streak heartbeats:\n%s", logs)
	}
	if n := strings.Count(logs, "recovered"); n != 1 {
		t.Errorf("failing->ok logged %d times, want 1:\n%s", n, logs)
	}
	if n := strings.Count(logs, "swapped in"); n != 1 {
		t.Errorf("swaps logged = %d, want 1 (healthy unchanged polls must be silent):\n%s", n, logs)
	}
}

// TestWatcherIgnoresUnchangedFile pins the healthy fast path: an unchanged
// file triggers neither loads nor logs.
func TestWatcherIgnoresUnchangedFile(t *testing.T) {
	lib := watchTestLibrary(t)
	srv := server.New(lib, nil)
	var buf bytes.Buffer
	w := newLibraryWatcher(srv, log.New(&buf, "", 0), "fake.jsonl", time.Millisecond)
	var loads atomic.Int64
	w.load = func(string) (*goalrec.Library, error) {
		loads.Add(1)
		return lib, nil
	}
	w.stat = func(string) (os.FileInfo, error) { return fakeInfo{time.Unix(1000, 0)}, nil }

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.run(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-done

	if loads.Load() != 0 {
		t.Errorf("unchanged file loaded %d times", loads.Load())
	}
	if buf.Len() != 0 {
		t.Errorf("unchanged file produced logs:\n%s", buf.String())
	}
}
