// Command goalgen synthesizes the paper's two evaluation scenarios and
// writes them to disk for offline experimentation:
//
//	goalgen -dataset foodmart -scale 0.1 -out ./data/foodmart
//	goalgen -dataset 43things -scale 1.0 -out ./data/43things
//
// Each run produces, inside the output directory:
//
//	library.bin     — the goal-implementation library (binary snapshot)
//	activities.csv  — one evaluation activity per line (numeric action ids)
//	sequences.csv   — the same activities in performed order (for
//	                  order-sensitive comparators)
//	stats.txt       — the library's summary statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"goalrec/internal/core"
	"goalrec/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "goalgen:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("dataset", "foodmart", "foodmart | 43things | curriculum")
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = the paper's full size)")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("out", ".", "output directory (created if missing)")
	flag.Parse()

	var (
		ds  *dataset.Dataset
		err error
	)
	switch *name {
	case "foodmart":
		ds, err = dataset.GenerateFoodMart(dataset.FoodMartConfig{Scale: *scale, Seed: *seed})
	case "43things":
		ds, err = dataset.GenerateFortyThreeThings(dataset.FortyThreeThingsConfig{Scale: *scale, Seed: *seed})
	case "curriculum":
		cfg := dataset.CurriculumConfig{Seed: *seed}
		cfg.Students = int(500 * *scale)
		ds, err = dataset.GenerateCurriculum(cfg)
	default:
		return fmt.Errorf("unknown dataset %q (want foodmart, 43things or curriculum)", *name)
	}
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "library.bin"), func(f *os.File) error {
		return core.WriteBinary(f, ds.Library)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "activities.csv"), func(f *os.File) error {
		return dataset.WriteActivityIDsCSV(f, ds.Activities())
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "sequences.csv"), func(f *os.File) error {
		return dataset.WriteActivityIDsCSV(f, ds.Sequences())
	}); err != nil {
		return err
	}
	stats := ds.Library.Stats()
	if err := writeFile(filepath.Join(*out, "stats.txt"), func(f *os.File) error {
		_, err := fmt.Fprintf(f, "%s\nusers=%d\n", stats, len(ds.Users))
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %s dataset to %s\n  %s\n  users=%d\n", ds.Name, *out, stats, len(ds.Users))
	return nil
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
