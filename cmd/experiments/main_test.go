package main

import (
	"reflect"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("5000, 20000,80000")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{5000, 20000, 80000}) {
		t.Errorf("parseSizes = %v", got)
	}
	for _, bad := range []string{"", "x", "-5", "0", ","} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}
