// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic datasets, plus the ablations in
// DESIGN.md:
//
//	experiments -scale 0.15 -max-users 500
//	experiments -scale 1.0                # the paper's full cardinalities
//	experiments -markdown -out results.md # GitHub-flavored markdown
//
// Experiment ids follow DESIGN.md: T2–T6 are the paper's tables, F3–F7 its
// figures (F3 shares its data with T4; F4b is the paper's exact
// customer-cart TPR protocol), B1–B4 and E1 the beyond-accuracy /
// significance / protocol extensions, A1–A3 the ablations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"goalrec/internal/core"
	"goalrec/internal/experiments"
	"goalrec/internal/strategy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid scaling size %q", part)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no scaling sizes given")
	}
	return sizes, nil
}

func run() error {
	scale := flag.Float64("scale", 0.15, "dataset scale (1.0 = the paper's full size)")
	k := flag.Int("k", 10, "recommendation list length")
	keep := flag.Float64("keep", 0.3, "visible fraction of each activity")
	maxUsers := flag.Int("max-users", 500, "evaluation users per dataset (0 = all)")
	seed := flag.Uint64("seed", 1, "run seed")
	markdown := flag.Bool("markdown", false, "render markdown instead of plain text")
	outPath := flag.String("out", "", "write results to this file instead of stdout")
	skipScaling := flag.Bool("skip-scaling", false, "skip the Figure 7 latency sweep")
	skipDatasets := flag.Bool("skip-datasets", false, "skip the dataset experiments (run only the Figure 7 sweep)")
	scalingSizes := flag.String("scaling-sizes", "5000,20000,80000", "comma-separated library sizes for the Figure 7 sweep")
	scalingActions := flag.Int("scaling-actions", 3000, "action-space size for the Figure 7 sweep")
	benchJSON := flag.String("bench-json", "", "also write the Figure 7 sweep points as JSON to this file")
	scalingQueries := flag.Int("scaling-queries", 0, "query activities timed per Figure 7 cell (0 selects the default)")
	pruning := flag.Bool("pruning", false, "run the Figure 7 sweep on the bound-driven pruned kernels")
	impactOrdering := flag.Bool("impact-ordering", false, "impact-order each swept library before timing")
	coldStart := flag.Bool("cold-start", false, "also measure cold start (legacy decode+rebuild vs mmap snapshot open) at the sweep sizes")
	userAppend := flag.Bool("user-append", false, "also measure append+recommend with a materialized counter view vs a from-scratch scan at the sweep sizes")
	blockCache := flag.Bool("block-cache", false, "also measure posting-row scans raw vs compressed, cold vs block-cached, at the sweep sizes")
	clusterBench := flag.Bool("cluster", false, "also measure scatter-gather throughput on in-process shard clusters of growing worker count (first sweep size)")
	clusterWorkers := flag.String("cluster-workers", "1,2,4", "comma-separated worker counts for the -cluster sweep")
	flag.Parse()

	sizes, err := parseSizes(*scalingSizes)
	if err != nil {
		return err
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	cfg := experiments.Config{
		Scale:    *scale,
		K:        *k,
		KeepFrac: *keep,
		MaxUsers: *maxUsers,
		Seed:     *seed,
	}

	emit := func(t *experiments.Table) error {
		if *markdown {
			return t.Markdown(out)
		}
		if err := t.Render(out); err != nil {
			return err
		}
		_, err := fmt.Fprintln(out)
		return err
	}

	builds := []struct {
		name string
		mk   func(experiments.Config) (*experiments.Env, error)
	}{
		{"foodmart", experiments.NewFoodMartEnv},
		{"43things", experiments.NewFortyThreeEnv},
	}
	if *skipDatasets {
		builds = nil
	}
	for _, build := range builds {
		start := time.Now()
		env, err := build.mk(cfg)
		if err != nil {
			return fmt.Errorf("preparing %s: %w", build.name, err)
		}
		fmt.Fprintf(out, "# dataset %s: %s, %d evaluation users (prepared in %v)\n\n",
			build.name, env.Dataset.Library.Stats(), len(env.Inputs), time.Since(start).Round(time.Millisecond))

		tables := []*experiments.Table{
			experiments.Table2(env),
			experiments.Table3(env),
			experiments.Table4(env), // also Figure 3
			experiments.Table5(env),
			experiments.Figure4(env),
			experiments.Figure4b(env),
			experiments.Figure5(env),
			experiments.Figure6(env),
			experiments.Table6(env),
			experiments.BeyondAccuracy(env),
			experiments.RankingAccuracy(env),
			experiments.CompletenessByGoalCount(env),
			experiments.SignificanceVsBaselines(env),
			experiments.TemporalSplit(env),
			experiments.MethodLatency(env),
			experiments.AblationBreadth(env),
			experiments.AblationBestMatch(env),
			experiments.AblationHybrid(env),
		}
		for _, t := range tables {
			if err := emit(t); err != nil {
				return err
			}
		}
	}

	if !*skipScaling {
		fmt.Fprintf(out, "# scalability (Figure 7)\n\n")
		points := experiments.Scalability(experiments.ScalabilityConfig{
			Sizes: sizes, Actions: *scalingActions, Seed: *seed,
			Queries: *scalingQueries,
			Pruning: *pruning, ImpactOrdering: *impactOrdering,
		})
		if err := emit(experiments.Figure7Table(points)); err != nil {
			return err
		}
		if err := emit(experiments.ConnectivitySweep(20000, []int{8000, 2000, 500}, *seed)); err != nil {
			return err
		}
		if *coldStart {
			cs, err := experiments.ColdStart(experiments.ScalabilityConfig{
				Sizes: sizes, Actions: *scalingActions, Seed: *seed,
			})
			if err != nil {
				return err
			}
			if err := emit(experiments.ColdStartTable(cs)); err != nil {
				return err
			}
			points = append(points, cs...)
		}
		if *userAppend {
			ua := experiments.UserAppend(experiments.UserAppendConfig{
				Sizes: sizes, Seed: *seed,
			})
			if err := emit(experiments.UserAppendTable(ua)); err != nil {
				return err
			}
			points = append(points, ua...)
		}
		if *blockCache {
			bc, err := experiments.BlockCacheScan(experiments.BlockCacheConfig{
				Sizes: sizes, Actions: *scalingActions, Seed: *seed,
			})
			if err != nil {
				return err
			}
			if err := emit(experiments.BlockCacheTable(bc)); err != nil {
				return err
			}
			points = append(points, bc...)
		}
		if *clusterBench {
			workerCounts, err := parseSizes(*clusterWorkers)
			if err != nil {
				return fmt.Errorf("-cluster-workers: %w", err)
			}
			cp, err := experiments.ClusterScaling(experiments.ClusterConfig{
				Size: sizes[0], Actions: *scalingActions, Seed: *seed,
				Workers: workerCounts, Queries: *scalingQueries,
			})
			if err != nil {
				return err
			}
			if err := emit(experiments.ClusterTable(cp)); err != nil {
				return err
			}
			points = append(points, cp...)
		}
		if *benchJSON != "" {
			if err := writeBenchJSON(*benchJSON, points); err != nil {
				return err
			}
		}
	}
	return nil
}

// benchPoint is the JSON shape of one Figure 7 cell, consumed by the README
// performance table, `make bench` and scripts/benchdiff.
type benchPoint struct {
	Method          string  `json:"method"`
	Implementations int     `json:"implementations"`
	Connectivity    float64 `json:"connectivity"`
	MeanLatencyMS   float64 `json:"mean_latency_ms"`
	// ColdStartMS duplicates the latency for the cold-start/* cells so the
	// restart-cost numbers are addressable by name in the bench JSON.
	ColdStartMS float64                      `json:"cold_start_ms,omitempty"`
	Pruning     *strategy.PruneStatsSnapshot `json:"pruning,omitempty"`
	// Cache carries the decoded-block cache counters for the block-cache/*
	// cells that ran with a cache enabled.
	Cache *core.BlockCacheStats `json:"cache,omitempty"`
}

// benchFile is the stamped envelope written since PR 5. Earlier bench files
// (BENCH_PR1/PR4) are bare point arrays; scripts/benchdiff reads both.
type benchFile struct {
	GitCommit string       `json:"git_commit"`
	Date      string       `json:"date"`
	Points    []benchPoint `json:"points"`
}

// gitCommit resolves the working tree's HEAD for provenance stamping; bench
// numbers without the commit they were measured at are unreviewable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func writeBenchJSON(path string, points []experiments.ScalabilityPoint) error {
	rows := make([]benchPoint, len(points))
	for i, p := range points {
		rows[i] = benchPoint{
			Method:          p.Method,
			Implementations: p.Implementations,
			Connectivity:    p.Connectivity,
			MeanLatencyMS:   float64(p.MeanLatency) / float64(time.Millisecond),
			Pruning:         p.Prune,
			Cache:           p.Cache,
		}
		if strings.HasPrefix(p.Method, "cold-start/") {
			rows[i].ColdStartMS = rows[i].MeanLatencyMS
		}
	}
	data, err := json.MarshalIndent(benchFile{
		GitCommit: gitCommit(),
		Date:      time.Now().UTC().Format(time.RFC3339),
		Points:    rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
