// Command goalrec-snap inspects and converts goalrec library files.
//
//	goalrec-snap inspect lib.gsnp          print header, sections, ratios
//	goalrec-snap verify  lib.gsnp          deep-validate every section
//	goalrec-snap convert [-compress] [-format snapshot|binary|json] in out
//
// convert sniffs the input format (JSON lines, legacy binary, or snapshot)
// and writes the requested output format — the migration path from
// pre-snapshot library files to the memory-mappable format goalrecd's
// -snapshot-dir store and LoadLibraryFile consume.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"goalrec"
	"goalrec/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "goalrec-snap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: goalrec-snap inspect|verify|convert ...")
	}
	switch args[0] {
	case "inspect":
		if len(args) != 2 {
			return errors.New("usage: goalrec-snap inspect <file.gsnp>")
		}
		return inspect(args[1])
	case "verify":
		if len(args) != 2 {
			return errors.New("usage: goalrec-snap verify <file.gsnp>")
		}
		return verify(args[1])
	case "convert":
		fs := flag.NewFlagSet("convert", flag.ContinueOnError)
		compress := fs.Bool("compress", false, "block-compress posting lists (snapshot output only)")
		format := fs.String("format", "snapshot", "output format: snapshot, binary, or json")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return errors.New("usage: goalrec-snap convert [-compress] [-format snapshot|binary|json] <in> <out>")
		}
		return convert(fs.Arg(0), fs.Arg(1), *format, *compress)
	default:
		return fmt.Errorf("unknown subcommand %q (want inspect, verify, or convert)", args[0])
	}
}

func inspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	d, err := core.DescribeSnapshot(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: snapshot v%d, %d bytes\n", path, d.Version, d.FileBytes)
	fmt.Printf("  implementations %d, actions %d, goals %d, slots %d\n",
		d.Implementations, d.Actions, d.Goals, d.Slots)
	fmt.Printf("  epoch %d, max impl len %d\n", d.Epoch, d.MaxImplLen)
	fmt.Printf("  postings %s, vocabulary %v, length-sorted layout %v\n",
		map[bool]string{true: "block-compressed", false: "raw"}[d.Compressed],
		d.HasVocabulary, d.LenSorted)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  section\toffset\telem\tcount\tbytes\tshare")
	var used uint64
	for _, s := range d.Sections {
		used += s.Bytes
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%.1f%%\n",
			s.Name, s.Offset, s.ElemSize, s.Count, s.Bytes,
			100*float64(s.Bytes)/float64(d.FileBytes))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("  header+padding: %d bytes (%.1f%% of file)\n",
		d.FileBytes-used, 100*float64(d.FileBytes-used)/float64(d.FileBytes))
	if d.Compressed {
		// Ratio of the compressed posting storage (offsets + blob) to the
		// 4 bytes/entry the raw section would take.
		var compBytes uint64
		for _, s := range d.Sections {
			if s.Name == "postings-compressed-offsets" || s.Name == "postings-compressed-blob" {
				compBytes += s.Bytes
			}
		}
		raw := 4 * d.Slots
		if raw > 0 {
			fmt.Printf("  posting compression: %d -> %d bytes (%.2fx)\n",
				raw, compBytes, float64(raw)/float64(compBytes))
		}
	}
	return nil
}

func verify(path string) error {
	snap, err := core.OpenSnapshot(path)
	if err != nil {
		return err
	}
	defer snap.Close()
	if err := core.VerifySnapshot(snap); err != nil {
		return err
	}
	lib := snap.Library()
	fmt.Printf("%s: ok (%d implementations, epoch %d)\n", path, lib.NumImplementations(), lib.Epoch())
	return nil
}

func convert(in, out, format string, compress bool) error {
	switch format {
	case "snapshot", "binary", "json":
	default:
		return fmt.Errorf("unknown output format %q (want snapshot, binary, or json)", format)
	}
	lib, err := goalrec.LoadLibraryFile(in)
	if err != nil {
		return err
	}
	switch format {
	case "snapshot":
		if err := lib.SaveSnapshotFile(out, compress); err != nil {
			return err
		}
	case "binary":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := lib.SaveBinary(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	case "json":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := lib.SaveJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown output format %q (want snapshot, binary, or json)", format)
	}
	fmt.Printf("%s -> %s (%s, %d implementations)\n", in, out, format, lib.NumImplementations())
	return nil
}
