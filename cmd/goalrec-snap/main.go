// Command goalrec-snap inspects and converts goalrec library files.
//
//	goalrec-snap inspect lib.gsnp          print header, sections, ratios
//	goalrec-snap inspect lib.gsnpd         print a delta's ref/inline layout
//	goalrec-snap verify  lib.gsnp          deep-validate every section
//	goalrec-snap convert [-compress] [-format snapshot|binary|json] in out
//	goalrec-snap diff new.gsnp base.gsnp out.gsnpd    write a delta
//	goalrec-snap materialize d.gsnpd base.gsnp out.gsnp
//
// convert sniffs the input format (JSON lines, legacy binary, or snapshot)
// and writes the requested output format — the migration path from
// pre-snapshot library files to the memory-mappable format goalrecd's
// -snapshot-dir store and LoadLibraryFile consume.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"goalrec"
	"goalrec/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "goalrec-snap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: goalrec-snap inspect|verify|convert ...")
	}
	switch args[0] {
	case "inspect":
		if len(args) != 2 {
			return errors.New("usage: goalrec-snap inspect <file.gsnp>")
		}
		return inspect(args[1])
	case "verify":
		if len(args) != 2 {
			return errors.New("usage: goalrec-snap verify <file.gsnp>")
		}
		return verify(args[1])
	case "convert":
		fs := flag.NewFlagSet("convert", flag.ContinueOnError)
		compress := fs.Bool("compress", false, "block-compress posting lists (snapshot output only)")
		format := fs.String("format", "snapshot", "output format: snapshot, binary, or json")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return errors.New("usage: goalrec-snap convert [-compress] [-format snapshot|binary|json] <in> <out>")
		}
		return convert(fs.Arg(0), fs.Arg(1), *format, *compress)
	case "diff":
		if len(args) != 4 {
			return errors.New("usage: goalrec-snap diff <new.gsnp> <base.gsnp> <out.gsnpd>")
		}
		return diff(args[1], args[2], args[3])
	case "materialize":
		if len(args) != 4 {
			return errors.New("usage: goalrec-snap materialize <delta.gsnpd> <base.gsnp> <out.gsnp>")
		}
		return materialize(args[1], args[2], args[3])
	default:
		return fmt.Errorf("unknown subcommand %q (want inspect, verify, convert, diff, or materialize)", args[0])
	}
}

func inspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if core.IsSnapshotDelta(data) {
		return inspectDelta(path, data)
	}
	d, err := core.DescribeSnapshot(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: snapshot v%d, %d bytes\n", path, d.Version, d.FileBytes)
	fmt.Printf("  implementations %d, actions %d, goals %d, slots %d\n",
		d.Implementations, d.Actions, d.Goals, d.Slots)
	fmt.Printf("  epoch %d, max impl len %d\n", d.Epoch, d.MaxImplLen)
	fmt.Printf("  postings %s, vocabulary %v, length-sorted layout %v\n",
		map[bool]string{true: "block-compressed", false: "raw"}[d.Compressed],
		d.HasVocabulary, d.LenSorted)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  section\toffset\telem\tcount\tbytes\tshare")
	var used uint64
	for _, s := range d.Sections {
		used += s.Bytes
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%.1f%%\n",
			s.Name, s.Offset, s.ElemSize, s.Count, s.Bytes,
			100*float64(s.Bytes)/float64(d.FileBytes))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("  header+padding: %d bytes (%.1f%% of file)\n",
		d.FileBytes-used, 100*float64(d.FileBytes-used)/float64(d.FileBytes))
	if d.Compressed {
		// Ratio of the compressed posting storage (offsets + blob) to the
		// 4 bytes/entry the raw section would take.
		var compBytes uint64
		for _, s := range d.Sections {
			if s.Name == "postings-compressed-offsets" || s.Name == "postings-compressed-blob" {
				compBytes += s.Bytes
			}
		}
		raw := 4 * d.Slots
		if raw > 0 {
			fmt.Printf("  posting compression: %d -> %d bytes (%.2fx)\n",
				raw, compBytes, float64(raw)/float64(compBytes))
		}
	}
	return nil
}

func inspectDelta(path string, data []byte) error {
	d, err := core.DescribeSnapshotDelta(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: delta snapshot v%d, %d bytes, epoch %d over base epoch %d\n",
		path, d.Version, d.FileBytes, d.Epoch, d.BaseEpoch)
	fmt.Printf("  implementations %d, actions %d, goals %d, slots %d\n",
		d.Implementations, d.Actions, d.Goals, d.Slots)
	fmt.Printf("  postings %s, vocabulary %v, length-sorted layout %v\n",
		map[bool]string{true: "block-compressed", false: "raw"}[d.Compressed],
		d.HasVocabulary, d.LenSorted)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  section\telem\tcount\tref-bytes\tinline-bytes\tinline-share")
	for _, s := range d.Sections {
		total := s.RefBytes + s.InlineBytes
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.InlineBytes) / float64(total)
		}
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%.1f%%\n",
			s.Name, s.ElemSize, s.Count, s.RefBytes, s.InlineBytes, share)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	logical := d.RefBytes + d.InlineBytes
	if logical > 0 {
		fmt.Printf("  references %d of %d logical bytes (%.1f%%); delta file is %.1f%% of the materialized payload\n",
			d.RefBytes, logical, 100*float64(d.RefBytes)/float64(logical),
			100*float64(d.FileBytes)/float64(logical))
	}
	return nil
}

func diff(newPath, basePath, outPath string) error {
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	baseData, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	snap, err := core.OpenSnapshotBytes(newData)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	defer snap.Close()
	nd, err := core.DescribeSnapshot(newData)
	if err != nil {
		return err
	}
	base, err := core.NewSnapshotBase(baseData)
	if err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	opts := core.SnapshotOptions{CompressPostings: nd.Compressed}
	if err := core.WriteSnapshotDiffFile(outPath, snap.Library(), snap.Vocabulary(), opts, base); err != nil {
		return err
	}
	// Prove the round trip before reporting success: materializing the delta
	// over the base must reproduce the input snapshot bit for bit.
	delta, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	img, err := core.MaterializeDelta(delta, base)
	if err != nil {
		return fmt.Errorf("verifying %s: %w", outPath, err)
	}
	if !bytes.Equal(img, newData) {
		return fmt.Errorf("verifying %s: materialized image differs from %s (%d vs %d bytes)", outPath, newPath, len(img), len(newData))
	}
	fmt.Printf("%s -> %s: %d of %d bytes (%.1f%%), verified against base %s\n",
		newPath, outPath, len(delta), len(newData),
		100*float64(len(delta))/float64(len(newData)), basePath)
	return nil
}

func materialize(deltaPath, basePath, outPath string) error {
	delta, err := os.ReadFile(deltaPath)
	if err != nil {
		return err
	}
	baseData, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	base, err := core.NewSnapshotBase(baseData)
	if err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	img, err := core.MaterializeDelta(delta, base)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, img, 0o644); err != nil {
		return err
	}
	snap, err := core.OpenSnapshotBytes(img)
	if err != nil {
		return fmt.Errorf("verifying %s: %w", outPath, err)
	}
	defer snap.Close()
	fmt.Printf("%s + %s -> %s (%d bytes, epoch %d, %d implementations)\n",
		deltaPath, basePath, outPath, len(img), snap.Library().Epoch(), snap.Library().NumImplementations())
	return nil
}

func verify(path string) error {
	snap, err := core.OpenSnapshot(path)
	if err != nil {
		return err
	}
	defer snap.Close()
	if err := core.VerifySnapshot(snap); err != nil {
		return err
	}
	lib := snap.Library()
	fmt.Printf("%s: ok (%d implementations, epoch %d)\n", path, lib.NumImplementations(), lib.Epoch())
	return nil
}

func convert(in, out, format string, compress bool) error {
	switch format {
	case "snapshot", "binary", "json":
	default:
		return fmt.Errorf("unknown output format %q (want snapshot, binary, or json)", format)
	}
	lib, err := goalrec.LoadLibraryFile(in)
	if err != nil {
		return err
	}
	switch format {
	case "snapshot":
		if err := lib.SaveSnapshotFile(out, compress); err != nil {
			return err
		}
	case "binary":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := lib.SaveBinary(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	case "json":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := lib.SaveJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown output format %q (want snapshot, binary, or json)", format)
	}
	fmt.Printf("%s -> %s (%s, %d implementations)\n", in, out, format, lib.NumImplementations())
	return nil
}
