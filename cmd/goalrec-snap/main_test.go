package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"goalrec"
)

func testLibraryFile(t *testing.T, dir string) (string, *goalrec.Library) {
	t.Helper()
	b := goalrec.NewBuilder()
	for i := 0; i < 80; i++ {
		if err := b.AddImplementation(fmt.Sprintf("goal-%d", i%9),
			fmt.Sprintf("act-%d", i%13), fmt.Sprintf("act-%d", (i*5)%17)); err != nil {
			t.Fatal(err)
		}
	}
	lib := b.Build()
	path := filepath.Join(dir, "lib.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, lib
}

// JSON -> compressed snapshot -> inspect/verify -> back to JSON, all through
// the CLI entry point.
func TestConvertInspectVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonPath, lib := testLibraryFile(t, dir)
	snapPath := filepath.Join(dir, "lib.gsnp")

	if err := run([]string{"convert", "-compress", jsonPath, snapPath}); err != nil {
		t.Fatalf("convert to snapshot: %v", err)
	}
	if err := run([]string{"inspect", snapPath}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := run([]string{"verify", snapPath}); err != nil {
		t.Fatalf("verify: %v", err)
	}

	backPath := filepath.Join(dir, "back.json")
	if err := run([]string{"convert", "-format", "json", snapPath, backPath}); err != nil {
		t.Fatalf("convert back to json: %v", err)
	}
	got, err := goalrec.LoadLibraryFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumImplementations() != lib.NumImplementations() {
		t.Fatalf("round trip lost implementations: %d != %d", got.NumImplementations(), lib.NumImplementations())
	}

	binPath := filepath.Join(dir, "lib.bin")
	if err := run([]string{"convert", "-format", "binary", snapPath, binPath}); err != nil {
		t.Fatalf("convert to legacy binary: %v", err)
	}
	if got, err := goalrec.LoadLibraryFile(binPath); err != nil || got.NumImplementations() != lib.NumImplementations() {
		t.Fatalf("legacy binary output unreadable: %v", err)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"inspect"},
		{"verify"},
		{"convert", "only-one-arg"},
		{"convert", "-format", "yaml", "a", "b"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
