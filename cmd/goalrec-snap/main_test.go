package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"goalrec"
)

func testLibraryFile(t *testing.T, dir string) (string, *goalrec.Library) {
	t.Helper()
	b := goalrec.NewBuilder()
	for i := 0; i < 80; i++ {
		if err := b.AddImplementation(fmt.Sprintf("goal-%d", i%9),
			fmt.Sprintf("act-%d", i%13), fmt.Sprintf("act-%d", (i*5)%17)); err != nil {
			t.Fatal(err)
		}
	}
	lib := b.Build()
	path := filepath.Join(dir, "lib.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, lib
}

// JSON -> compressed snapshot -> inspect/verify -> back to JSON, all through
// the CLI entry point.
func TestConvertInspectVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonPath, lib := testLibraryFile(t, dir)
	snapPath := filepath.Join(dir, "lib.gsnp")

	if err := run([]string{"convert", "-compress", jsonPath, snapPath}); err != nil {
		t.Fatalf("convert to snapshot: %v", err)
	}
	if err := run([]string{"inspect", snapPath}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := run([]string{"verify", snapPath}); err != nil {
		t.Fatalf("verify: %v", err)
	}

	backPath := filepath.Join(dir, "back.json")
	if err := run([]string{"convert", "-format", "json", snapPath, backPath}); err != nil {
		t.Fatalf("convert back to json: %v", err)
	}
	got, err := goalrec.LoadLibraryFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumImplementations() != lib.NumImplementations() {
		t.Fatalf("round trip lost implementations: %d != %d", got.NumImplementations(), lib.NumImplementations())
	}

	binPath := filepath.Join(dir, "lib.bin")
	if err := run([]string{"convert", "-format", "binary", snapPath, binPath}); err != nil {
		t.Fatalf("convert to legacy binary: %v", err)
	}
	if got, err := goalrec.LoadLibraryFile(binPath); err != nil || got.NumImplementations() != lib.NumImplementations() {
		t.Fatalf("legacy binary output unreadable: %v", err)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"inspect"},
		{"verify"},
		{"convert", "only-one-arg"},
		{"convert", "-format", "yaml", "a", "b"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// diff + materialize round-trip through the CLI: the delta must rebuild the
// new snapshot bit for bit, and inspect must understand the delta file.
func TestDiffMaterializeRoundTrip(t *testing.T) {
	dir := t.TempDir()

	writeSnap := func(name string, n int) string {
		t.Helper()
		b := goalrec.NewBuilder()
		for i := 0; i < n; i++ {
			if err := b.AddImplementation(fmt.Sprintf("goal-%d", i%9),
				fmt.Sprintf("act-%d", i%13), fmt.Sprintf("act-%d", (i*5)%17)); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join(dir, name)
		if err := b.Build().SaveSnapshotFile(path, true); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := writeSnap("base.gsnp", 80)
	newPath := writeSnap("new.gsnp", 120)

	deltaPath := filepath.Join(dir, "new.gsnpd")
	if err := run([]string{"diff", newPath, basePath, deltaPath}); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if err := run([]string{"inspect", deltaPath}); err != nil {
		t.Fatalf("inspect delta: %v", err)
	}

	outPath := filepath.Join(dir, "rebuilt.gsnp")
	if err := run([]string{"materialize", deltaPath, basePath, outPath}); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	want, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("materialized snapshot differs from the original (%d vs %d bytes)", len(got), len(want))
	}
	if err := run([]string{"verify", outPath}); err != nil {
		t.Fatalf("verify rebuilt: %v", err)
	}

	// Usage errors for the new subcommands.
	for _, args := range [][]string{
		{"diff", "a", "b"},
		{"materialize", "a", "b"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
