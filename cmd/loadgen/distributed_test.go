package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goalrec/internal/server"
)

// startLoadWorkers spins up n in-process -serve loadgen workers and returns
// their addresses.
func startLoadWorkers(t *testing.T, n int) []string {
	t.Helper()
	lib := loadTestLibrary(t)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		addr := addrs[i]
		go func() {
			if err := serveLoadWorker(addr, lib); err != nil {
				// The listener dies with the test process; only log.
				t.Logf("loadgen worker %s: %v", addr, err)
			}
		}()
	}
	for _, addr := range addrs {
		waitForListener(t, addr)
	}
	return addrs
}

func waitForListener(t *testing.T, addr string) {
	t.Helper()
	for i := 0; i < 200; i++ {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
	}
	t.Fatalf("loadgen worker %s never came up", addr)
}

// TestDistributedRun fans a run out over two -serve workers and checks the
// merged stats cover the full request budget.
func TestDistributedRun(t *testing.T) {
	lib := loadTestLibrary(t)
	ts := httptest.NewServer(server.New(lib, nil))
	defer ts.Close()
	workers := startLoadWorkers(t, 2)

	cfg := config{
		url: ts.URL, strategy: "breadth", k: 5,
		concurrency: 2, requests: 51, activityLen: 2, seed: 1,
		lib: lib,
	}
	stats, err := executeDistributed(cfg, workers)
	if err != nil {
		t.Fatalf("executeDistributed: %v", err)
	}
	// 51 requests split 26/25 across the two workers, all OK.
	if stats.Requests != 51 || stats.OK != 51 {
		t.Errorf("merged stats = %d requests, %d ok, want 51/51", stats.Requests, stats.OK)
	}
	if len(stats.LatenciesMs) != 51 {
		t.Errorf("merged latencies = %d samples, want 51", len(stats.LatenciesMs))
	}

	var out bytes.Buffer
	cfg.out = &out
	if err := reportStats(cfg, stats); err != nil {
		t.Fatalf("reportStats: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: 51") {
		t.Errorf("summary missing merged ok count:\n%s", out.String())
	}
}

// TestDistributedRunWorkerError checks a failing worker surfaces its error
// instead of silently dropping its slice of the run.
func TestDistributedRunWorkerError(t *testing.T) {
	lib := loadTestLibrary(t)
	workers := startLoadWorkers(t, 1)
	cfg := config{
		// Nothing listens on this port: every request errors, and strict
		// mode inside the worker is irrelevant — executeLoad only fails on
		// generation errors, so the stats come back with Errors set.
		url: "http://127.0.0.1:1", strategy: "breadth", k: 5,
		concurrency: 2, requests: 4, activityLen: 2, seed: 1,
		lib: lib,
	}
	stats, err := executeDistributed(cfg, workers)
	if err != nil {
		t.Fatalf("executeDistributed: %v", err)
	}
	if stats.Errors != 4 {
		t.Errorf("stats.Errors = %d, want 4", stats.Errors)
	}
	var out bytes.Buffer
	cfg.out = &out
	if err := reportStats(cfg, stats); err == nil {
		t.Error("reportStats accepted a run where every request errored")
	}

	// A worker address nothing listens on must fail the whole run.
	if _, err := executeDistributed(cfg, []string{"127.0.0.1:1"}); err == nil {
		t.Error("executeDistributed accepted an unreachable worker")
	}
}

// TestSweepEmitsBenchCells runs a small grid (locally and via a worker) and
// checks the bench-JSON output has one well-formed cell per grid point.
func TestSweepEmitsBenchCells(t *testing.T) {
	lib := loadTestLibrary(t)
	ts := httptest.NewServer(server.New(lib, nil))
	defer ts.Close()

	grids := sweepGrids{
		strategies: []string{"breadth", "focus-cmp"},
		ks:         []int{3, 5},
		batches:    []int{1, 4},
		zipfs:      []float64{0, 1.1},
	}
	for _, tc := range []struct {
		name    string
		workers []string
	}{
		{"local", nil},
		{"distributed", startLoadWorkers(t, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cells.json")
			var out bytes.Buffer
			cfg := config{
				url: ts.URL, concurrency: 2, requests: 12, activityLen: 2,
				seed: 1, lib: lib, out: &out,
			}
			if err := runSweep(cfg, grids, tc.workers, path); err != nil {
				t.Fatalf("runSweep: %v\n%s", err, out.String())
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var cells []benchCell
			if err := json.Unmarshal(data, &cells); err != nil {
				t.Fatalf("bench-JSON did not parse: %v", err)
			}
			if want := 2 * 2 * 2 * 2; len(cells) != want {
				t.Fatalf("got %d cells, want %d", len(cells), want)
			}
			seen := map[string]bool{}
			for _, c := range cells {
				if seen[c.Method] {
					t.Errorf("duplicate cell %q", c.Method)
				}
				seen[c.Method] = true
				if c.OK == 0 || c.Failed != 0 {
					t.Errorf("cell %q: ok=%d failed=%d", c.Method, c.OK, c.Failed)
				}
				if c.MeanLatencyMS <= 0 || c.ThroughputRPS <= 0 {
					t.Errorf("cell %q has empty metrics: %+v", c.Method, c)
				}
				if c.Implementations != lib.NumImplementations() {
					t.Errorf("cell %q implementations = %d", c.Method, c.Implementations)
				}
			}
			if !seen["loadgen/focus-cmp/k=5/batch=4/zipf=1.1"] {
				t.Errorf("missing expected grid cell; got %v", seen)
			}
		})
	}
}
