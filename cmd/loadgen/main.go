// Command loadgen load-tests a running goalrecd instance: it replays
// recommendation requests drawn from a library file and reports throughput
// and latency percentiles.
//
//	goalrecd -library recipes.jsonl -addr :8080 &
//	loadgen -url http://localhost:8080 -library recipes.jsonl \
//	        -concurrency 8 -requests 2000 -strategy breadth
//
// With -overload the generator expects to be shed: 503 (admission control)
// and 504 (request deadline) responses are counted and reported but are
// not failures — only transport errors and unexpected statuses are. This
// is the mode the soak job runs against a gated daemon. -duration runs for
// a wall-clock interval (cycling the sampled requests) instead of a fixed
// request count.
//
// With -users N the generator exercises the per-user store instead of the
// stateless endpoints: requests alternate between appending sampled actions
// to one of N user histories (POST /v1/users/{id}/actions) and scoring a
// stored history (GET /v1/users/{id}/recommend). A recommend racing a
// user's first append may see 404; those are counted and reported, not
// failures.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"goalrec"
	"goalrec/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type result struct {
	latency time.Duration
	status  int
	err     error
	items   int // activities carried by the request (1 unbatched)
}

// config carries everything runLoad needs; flags populate it in run and
// tests populate it directly.
type config struct {
	url         string
	strategy    string
	k           int
	concurrency int
	requests    int
	duration    time.Duration // > 0 switches from request-count to wall-clock mode
	activityLen int
	seed        uint64
	zipf        float64 // > 0 samples actions Zipf-skewed with this exponent
	overload    bool
	batch       int // > 1 sends /v1/recommend/batch with this many activities per request
	users       int // > 0 targets the per-user endpoints, spread over this many users
	lib         *goalrec.Library
	out         io.Writer
}

func run() error {
	url := flag.String("url", "http://localhost:8080", "goalrecd base URL")
	libPath := flag.String("library", "", "library file used to sample query activities")
	strategyName := flag.String("strategy", "breadth", "strategy to request")
	k := flag.Int("k", 10, "list length to request")
	concurrency := flag.Int("concurrency", 4, "parallel clients")
	requests := flag.Int("requests", 1000, "total requests to send")
	duration := flag.Duration("duration", 0, "run for this long instead of a fixed request count (cycles the sampled requests)")
	activityLen := flag.Int("activity-len", 3, "actions per sampled query")
	seed := flag.Uint64("seed", 1, "sampling seed")
	zipf := flag.Float64("zipf", 0, "sample actions Zipf-skewed with this exponent (0 = uniform); skew concentrates queries on hot actions, the cache-friendly real-traffic shape")
	overload := flag.Bool("overload", false, "expect shedding: 503/504 responses are reported, not failures")
	batch := flag.Int("batch", 1, "activities per request; > 1 targets /v1/recommend/batch")
	users := flag.Int("users", 0, "target the per-user endpoints, alternating appends and recommends over this many users (0 disables)")
	serveAddr := flag.String("serve", "", "run as a distributed loadgen worker, serving run requests on this address instead of generating load")
	workersFlag := flag.String("workers", "", "comma-separated -serve worker addresses to fan the run out over (empty generates locally)")
	sweep := flag.Bool("sweep", false, "run a benchmark grid over -strategies/-ks/-batches/-zipfs instead of a single configuration")
	strategiesGrid := flag.String("strategies", "breadth,focus-cmp,focus-cl,best-match", "strategy grid for -sweep")
	ksGrid := flag.String("ks", "10", "k grid for -sweep")
	batchesGrid := flag.String("batches", "1", "batch-size grid for -sweep")
	zipfsGrid := flag.String("zipfs", "0", "zipf-exponent grid for -sweep")
	benchJSON := flag.String("bench-json", "", "write one bench-JSON cell per -sweep grid point to this file")
	flag.Parse()
	if *libPath == "" {
		return fmt.Errorf("-library is required")
	}
	lib, err := goalrec.LoadLibraryFile(*libPath)
	if err != nil {
		return err
	}
	if *serveAddr != "" {
		return serveLoadWorker(*serveAddr, lib)
	}
	cfg := config{
		url:         *url,
		strategy:    *strategyName,
		k:           *k,
		concurrency: *concurrency,
		requests:    *requests,
		duration:    *duration,
		activityLen: *activityLen,
		seed:        *seed,
		zipf:        *zipf,
		overload:    *overload,
		batch:       *batch,
		users:       *users,
		lib:         lib,
		out:         os.Stdout,
	}
	workers := splitList(*workersFlag)
	if *sweep {
		grids := sweepGrids{strategies: splitList(*strategiesGrid)}
		if grids.ks, err = parseInts(*ksGrid); err != nil {
			return err
		}
		if grids.batches, err = parseInts(*batchesGrid); err != nil {
			return err
		}
		if grids.zipfs, err = parseFloats(*zipfsGrid); err != nil {
			return err
		}
		return runSweep(cfg, grids, workers, *benchJSON)
	}
	if len(workers) > 0 {
		stats, err := executeDistributed(cfg, workers)
		if err != nil {
			return err
		}
		return reportStats(cfg, stats)
	}
	return runLoad(cfg)
}

// loadStats is the outcome of one load run, JSON-serializable so remote
// loadgen workers can report theirs back for merging.
type loadStats struct {
	Requests    int       `json:"requests"`
	OK          int       `json:"ok"`
	Shed        int       `json:"shed"`
	TimedOut    int       `json:"timed_out"`
	NotFound    int       `json:"not_found"`
	Unexpected  int       `json:"unexpected"`
	Errors      int       `json:"errors"`
	OKItems     int       `json:"ok_items"` // activities scored by OK responses
	ElapsedMs   float64   `json:"elapsed_ms"`
	LatenciesMs []float64 `json:"latencies_ms"` // OK-response latencies, unsorted
}

// merge folds another run's stats in. Elapsed is the max, not the sum: the
// runs were concurrent, so throughput = total work / longest wall clock.
func (s *loadStats) merge(o loadStats) {
	s.Requests += o.Requests
	s.OK += o.OK
	s.Shed += o.Shed
	s.TimedOut += o.TimedOut
	s.NotFound += o.NotFound
	s.Unexpected += o.Unexpected
	s.Errors += o.Errors
	s.OKItems += o.OKItems
	if o.ElapsedMs > s.ElapsedMs {
		s.ElapsedMs = o.ElapsedMs
	}
	s.LatenciesMs = append(s.LatenciesMs, o.LatenciesMs...)
}

func runLoad(cfg config) error {
	stats, err := executeLoad(cfg)
	if err != nil {
		return err
	}
	return reportStats(cfg, stats)
}

// executeLoad generates and sends the requests, returning the raw outcome.
func executeLoad(cfg config) (loadStats, error) {
	actions := cfg.lib.Actions()
	if len(actions) == 0 {
		return loadStats{}, fmt.Errorf("library has no actions")
	}

	// Pre-build the request bodies deterministically. In batch mode the same
	// sampled activities are grouped batch-at-a-time into
	// /v1/recommend/batch bodies, so -batch N at the same offered load sends
	// 1/N the requests while scoring the same activities.
	rng := xrand.New(cfg.seed)
	batch := cfg.batch
	if batch < 1 {
		batch = 1
	}
	nActivities := cfg.requests
	if cfg.duration > 0 && nActivities < 256 {
		nActivities = 256
	}
	var zipf *xrand.Zipf
	if cfg.zipf > 0 {
		zipf = xrand.NewZipf(rng, len(actions), cfg.zipf)
	}
	sample := func() []string {
		n := cfg.activityLen
		if n > len(actions) {
			n = len(actions)
		}
		var idxs []int32
		if zipf != nil {
			idxs = zipf.SampleDistinct(n)
		} else {
			idxs = rng.SampleInt32(int32(len(actions)), n)
		}
		activity := make([]string, 0, n)
		for _, idx := range idxs {
			activity = append(activity, actions[idx])
		}
		return activity
	}
	type reqSpec struct {
		method string
		path   string
		body   []byte
		items  int
	}
	var reqs []reqSpec
	switch {
	case cfg.users > 0:
		// Per-user mode: alternate history appends and stored-history
		// recommends, spread over cfg.users user ids.
		recommendPath := fmt.Sprintf("?strategy=%s&k=%d", cfg.strategy, cfg.k)
		for i := 0; i < nActivities; i++ {
			id := fmt.Sprintf("u%d", rng.SampleInt32(int32(cfg.users), 1)[0])
			if i%2 == 0 {
				body, err := json.Marshal(map[string]interface{}{"actions": sample()})
				if err != nil {
					return loadStats{}, err
				}
				reqs = append(reqs, reqSpec{"POST", "/v1/users/" + id + "/actions", body, 1})
			} else {
				reqs = append(reqs, reqSpec{"GET", "/v1/users/" + id + "/recommend" + recommendPath, nil, 1})
			}
		}
	case batch == 1:
		for i := 0; i < nActivities; i++ {
			body, err := json.Marshal(map[string]interface{}{
				"activity": sample(), "strategy": cfg.strategy, "k": cfg.k,
			})
			if err != nil {
				return loadStats{}, err
			}
			reqs = append(reqs, reqSpec{"POST", "/v1/recommend", body, 1})
		}
	default:
		for done := 0; done < nActivities; {
			n := batch
			if n > nActivities-done {
				n = nActivities - done
			}
			activities := make([][]string, n)
			for i := range activities {
				activities[i] = sample()
			}
			body, err := json.Marshal(map[string]interface{}{
				"activities": activities, "strategy": cfg.strategy, "k": cfg.k,
			})
			if err != nil {
				return loadStats{}, err
			}
			reqs = append(reqs, reqSpec{"POST", "/v1/recommend/batch", body, n})
			done += n
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	jobs := make(chan int)
	results := make([]result, 0, len(reqs))
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				spec := reqs[i]
				var body io.Reader
				if spec.body != nil {
					body = bytes.NewReader(spec.body)
				}
				req, err := http.NewRequest(spec.method, cfg.url+spec.path, body)
				if err != nil {
					mu.Lock()
					results = append(results, result{err: err, items: spec.items})
					mu.Unlock()
					continue
				}
				if spec.body != nil {
					req.Header.Set("Content-Type", "application/json")
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				r := result{latency: time.Since(t0), err: err, items: spec.items}
				if err == nil {
					r.status = resp.StatusCode
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	if cfg.duration > 0 {
		deadline := start.Add(cfg.duration)
	feed:
		for {
			for i := range reqs {
				if time.Now().After(deadline) {
					break feed
				}
				jobs <- i
			}
		}
	} else {
		for i := range reqs {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	stats := loadStats{ElapsedMs: float64(elapsed) / float64(time.Millisecond)}
	for _, r := range results {
		stats.Requests++
		switch {
		case r.err != nil:
			stats.Errors++
		case r.status == http.StatusOK:
			stats.OK++
			stats.OKItems += r.items
			stats.LatenciesMs = append(stats.LatenciesMs, float64(r.latency)/float64(time.Millisecond))
		case r.status == http.StatusServiceUnavailable:
			stats.Shed++
		case r.status == http.StatusGatewayTimeout:
			stats.TimedOut++
		case r.status == http.StatusNotFound && cfg.users > 0:
			// A recommend raced the user's first append; expected in user mode.
			stats.NotFound++
		default:
			stats.Unexpected++
		}
	}
	return stats, nil
}

// reportStats prints a run's summary and applies the failure policy:
// transport errors and unexpected statuses always fail; shed/deadline
// responses fail unless -overload declared them expected.
func reportStats(cfg config, stats loadStats) error {
	fmt.Fprintf(cfg.out, "requests: %d  ok: %d  shed(503): %d  deadline(504): %d  not_found(404): %d  other: %d  errors: %d\n",
		stats.Requests, stats.OK, stats.Shed, stats.TimedOut, stats.NotFound, stats.Unexpected, stats.Errors)
	dist := "uniform"
	if cfg.zipf > 0 {
		dist = fmt.Sprintf("zipf(%.2f)", cfg.zipf)
	}
	elapsedSec := stats.ElapsedMs / 1000
	fmt.Fprintf(cfg.out, "elapsed: %v  throughput: %.1f req/s  recommendations: %.1f activities/s  sampling: %s\n",
		(time.Duration(stats.ElapsedMs * float64(time.Millisecond))).Round(time.Millisecond),
		float64(stats.Requests)/elapsedSec, float64(stats.OKItems)/elapsedSec, dist)
	if len(stats.LatenciesMs) > 0 {
		latencies := append([]float64(nil), stats.LatenciesMs...)
		sort.Float64s(latencies)
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return time.Duration(latencies[i] * float64(time.Millisecond))
		}
		fmt.Fprintf(cfg.out, "latency: p50=%v p90=%v p95=%v p99=%v max=%v\n",
			pct(0.50), pct(0.90), pct(0.95), pct(0.99),
			time.Duration(latencies[len(latencies)-1]*float64(time.Millisecond)))
	}
	if stats.Errors > 0 || stats.Unexpected > 0 {
		return fmt.Errorf("%d transport errors, %d unexpected statuses", stats.Errors, stats.Unexpected)
	}
	if !cfg.overload && (stats.Shed > 0 || stats.TimedOut > 0) {
		return fmt.Errorf("%d shed, %d deadline-exceeded responses (run with -overload to expect shedding)", stats.Shed, stats.TimedOut)
	}
	return nil
}
