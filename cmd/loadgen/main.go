// Command loadgen load-tests a running goalrecd instance: it replays
// recommendation requests drawn from a library file and reports throughput
// and latency percentiles.
//
//	goalrecd -library recipes.jsonl -addr :8080 &
//	loadgen -url http://localhost:8080 -library recipes.jsonl \
//	        -concurrency 8 -requests 2000 -strategy breadth
//
// With -overload the generator expects to be shed: 503 (admission control)
// and 504 (request deadline) responses are counted and reported but are
// not failures — only transport errors and unexpected statuses are. This
// is the mode the soak job runs against a gated daemon. -duration runs for
// a wall-clock interval (cycling the sampled requests) instead of a fixed
// request count.
//
// With -users N the generator exercises the per-user store instead of the
// stateless endpoints: requests alternate between appending sampled actions
// to one of N user histories (POST /v1/users/{id}/actions) and scoring a
// stored history (GET /v1/users/{id}/recommend). A recommend racing a
// user's first append may see 404; those are counted and reported, not
// failures.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"goalrec"
	"goalrec/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type result struct {
	latency time.Duration
	status  int
	err     error
	items   int // activities carried by the request (1 unbatched)
}

// config carries everything runLoad needs; flags populate it in run and
// tests populate it directly.
type config struct {
	url         string
	strategy    string
	k           int
	concurrency int
	requests    int
	duration    time.Duration // > 0 switches from request-count to wall-clock mode
	activityLen int
	seed        uint64
	zipf        float64 // > 0 samples actions Zipf-skewed with this exponent
	overload    bool
	batch       int // > 1 sends /v1/recommend/batch with this many activities per request
	users       int // > 0 targets the per-user endpoints, spread over this many users
	lib         *goalrec.Library
	out         io.Writer
}

func run() error {
	url := flag.String("url", "http://localhost:8080", "goalrecd base URL")
	libPath := flag.String("library", "", "library file used to sample query activities")
	strategyName := flag.String("strategy", "breadth", "strategy to request")
	k := flag.Int("k", 10, "list length to request")
	concurrency := flag.Int("concurrency", 4, "parallel clients")
	requests := flag.Int("requests", 1000, "total requests to send")
	duration := flag.Duration("duration", 0, "run for this long instead of a fixed request count (cycles the sampled requests)")
	activityLen := flag.Int("activity-len", 3, "actions per sampled query")
	seed := flag.Uint64("seed", 1, "sampling seed")
	zipf := flag.Float64("zipf", 0, "sample actions Zipf-skewed with this exponent (0 = uniform); skew concentrates queries on hot actions, the cache-friendly real-traffic shape")
	overload := flag.Bool("overload", false, "expect shedding: 503/504 responses are reported, not failures")
	batch := flag.Int("batch", 1, "activities per request; > 1 targets /v1/recommend/batch")
	users := flag.Int("users", 0, "target the per-user endpoints, alternating appends and recommends over this many users (0 disables)")
	flag.Parse()
	if *libPath == "" {
		return fmt.Errorf("-library is required")
	}
	lib, err := goalrec.LoadLibraryFile(*libPath)
	if err != nil {
		return err
	}
	return runLoad(config{
		url:         *url,
		strategy:    *strategyName,
		k:           *k,
		concurrency: *concurrency,
		requests:    *requests,
		duration:    *duration,
		activityLen: *activityLen,
		seed:        *seed,
		zipf:        *zipf,
		overload:    *overload,
		batch:       *batch,
		users:       *users,
		lib:         lib,
		out:         os.Stdout,
	})
}

func runLoad(cfg config) error {
	actions := cfg.lib.Actions()
	if len(actions) == 0 {
		return fmt.Errorf("library has no actions")
	}

	// Pre-build the request bodies deterministically. In batch mode the same
	// sampled activities are grouped batch-at-a-time into
	// /v1/recommend/batch bodies, so -batch N at the same offered load sends
	// 1/N the requests while scoring the same activities.
	rng := xrand.New(cfg.seed)
	batch := cfg.batch
	if batch < 1 {
		batch = 1
	}
	nActivities := cfg.requests
	if cfg.duration > 0 && nActivities < 256 {
		nActivities = 256
	}
	var zipf *xrand.Zipf
	if cfg.zipf > 0 {
		zipf = xrand.NewZipf(rng, len(actions), cfg.zipf)
	}
	sample := func() []string {
		n := cfg.activityLen
		if n > len(actions) {
			n = len(actions)
		}
		var idxs []int32
		if zipf != nil {
			idxs = zipf.SampleDistinct(n)
		} else {
			idxs = rng.SampleInt32(int32(len(actions)), n)
		}
		activity := make([]string, 0, n)
		for _, idx := range idxs {
			activity = append(activity, actions[idx])
		}
		return activity
	}
	type reqSpec struct {
		method string
		path   string
		body   []byte
		items  int
	}
	var reqs []reqSpec
	switch {
	case cfg.users > 0:
		// Per-user mode: alternate history appends and stored-history
		// recommends, spread over cfg.users user ids.
		recommendPath := fmt.Sprintf("?strategy=%s&k=%d", cfg.strategy, cfg.k)
		for i := 0; i < nActivities; i++ {
			id := fmt.Sprintf("u%d", rng.SampleInt32(int32(cfg.users), 1)[0])
			if i%2 == 0 {
				body, err := json.Marshal(map[string]interface{}{"actions": sample()})
				if err != nil {
					return err
				}
				reqs = append(reqs, reqSpec{"POST", "/v1/users/" + id + "/actions", body, 1})
			} else {
				reqs = append(reqs, reqSpec{"GET", "/v1/users/" + id + "/recommend" + recommendPath, nil, 1})
			}
		}
	case batch == 1:
		for i := 0; i < nActivities; i++ {
			body, err := json.Marshal(map[string]interface{}{
				"activity": sample(), "strategy": cfg.strategy, "k": cfg.k,
			})
			if err != nil {
				return err
			}
			reqs = append(reqs, reqSpec{"POST", "/v1/recommend", body, 1})
		}
	default:
		for done := 0; done < nActivities; {
			n := batch
			if n > nActivities-done {
				n = nActivities - done
			}
			activities := make([][]string, n)
			for i := range activities {
				activities[i] = sample()
			}
			body, err := json.Marshal(map[string]interface{}{
				"activities": activities, "strategy": cfg.strategy, "k": cfg.k,
			})
			if err != nil {
				return err
			}
			reqs = append(reqs, reqSpec{"POST", "/v1/recommend/batch", body, n})
			done += n
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	jobs := make(chan int)
	results := make([]result, 0, len(reqs))
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				spec := reqs[i]
				var body io.Reader
				if spec.body != nil {
					body = bytes.NewReader(spec.body)
				}
				req, err := http.NewRequest(spec.method, cfg.url+spec.path, body)
				if err != nil {
					mu.Lock()
					results = append(results, result{err: err, items: spec.items})
					mu.Unlock()
					continue
				}
				if spec.body != nil {
					req.Header.Set("Content-Type", "application/json")
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				r := result{latency: time.Since(t0), err: err, items: spec.items}
				if err == nil {
					r.status = resp.StatusCode
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	if cfg.duration > 0 {
		deadline := start.Add(cfg.duration)
	feed:
		for {
			for i := range reqs {
				if time.Now().After(deadline) {
					break feed
				}
				jobs <- i
			}
		}
	} else {
		for i := range reqs {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []time.Duration
	errors, shed, timedOut, notFound, unexpected, okActivities := 0, 0, 0, 0, 0, 0
	for _, r := range results {
		switch {
		case r.err != nil:
			errors++
		case r.status == http.StatusOK:
			latencies = append(latencies, r.latency)
			okActivities += r.items
		case r.status == http.StatusServiceUnavailable:
			shed++
		case r.status == http.StatusGatewayTimeout:
			timedOut++
		case r.status == http.StatusNotFound && cfg.users > 0:
			// A recommend raced the user's first append; expected in user mode.
			notFound++
		default:
			unexpected++
		}
	}
	fmt.Fprintf(cfg.out, "requests: %d  ok: %d  shed(503): %d  deadline(504): %d  not_found(404): %d  other: %d  errors: %d\n",
		len(results), len(latencies), shed, timedOut, notFound, unexpected, errors)
	dist := "uniform"
	if cfg.zipf > 0 {
		dist = fmt.Sprintf("zipf(%.2f)", cfg.zipf)
	}
	fmt.Fprintf(cfg.out, "elapsed: %v  throughput: %.1f req/s  recommendations: %.1f activities/s  sampling: %s\n",
		elapsed.Round(time.Millisecond), float64(len(results))/elapsed.Seconds(),
		float64(okActivities)/elapsed.Seconds(), dist)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		fmt.Fprintf(cfg.out, "latency: p50=%v p90=%v p95=%v p99=%v max=%v\n",
			pct(0.50), pct(0.90), pct(0.95), pct(0.99), latencies[len(latencies)-1])
	}
	if errors > 0 || unexpected > 0 {
		return fmt.Errorf("%d transport errors, %d unexpected statuses", errors, unexpected)
	}
	if !cfg.overload && (shed > 0 || timedOut > 0) {
		return fmt.Errorf("%d shed, %d deadline-exceeded responses (run with -overload to expect shedding)", shed, timedOut)
	}
	return nil
}
