// Command loadgen load-tests a running goalrecd instance: it replays
// recommendation requests drawn from a library file and reports throughput
// and latency percentiles.
//
//	goalrecd -library recipes.jsonl -addr :8080 &
//	loadgen -url http://localhost:8080 -library recipes.jsonl \
//	        -concurrency 8 -requests 2000 -strategy breadth
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"goalrec"
	"goalrec/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type result struct {
	latency time.Duration
	status  int
	err     error
}

func run() error {
	url := flag.String("url", "http://localhost:8080", "goalrecd base URL")
	libPath := flag.String("library", "", "library file used to sample query activities")
	strategyName := flag.String("strategy", "breadth", "strategy to request")
	k := flag.Int("k", 10, "list length to request")
	concurrency := flag.Int("concurrency", 4, "parallel clients")
	requests := flag.Int("requests", 1000, "total requests to send")
	activityLen := flag.Int("activity-len", 3, "actions per sampled query")
	seed := flag.Uint64("seed", 1, "sampling seed")
	flag.Parse()
	if *libPath == "" {
		return fmt.Errorf("-library is required")
	}
	lib, err := goalrec.LoadLibraryFile(*libPath)
	if err != nil {
		return err
	}
	actions := lib.Actions()
	if len(actions) == 0 {
		return fmt.Errorf("library has no actions")
	}

	// Pre-build the request bodies deterministically.
	rng := xrand.New(*seed)
	bodies := make([][]byte, *requests)
	for i := range bodies {
		n := *activityLen
		if n > len(actions) {
			n = len(actions)
		}
		activity := make([]string, 0, n)
		for _, idx := range rng.SampleInt32(int32(len(actions)), n) {
			activity = append(activity, actions[idx])
		}
		body, err := json.Marshal(map[string]interface{}{
			"activity": activity, "strategy": *strategyName, "k": *k,
		})
		if err != nil {
			return err
		}
		bodies[i] = body
	}

	client := &http.Client{Timeout: 30 * time.Second}
	jobs := make(chan []byte)
	results := make([]result, 0, *requests)
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range jobs {
				t0 := time.Now()
				resp, err := client.Post(*url+"/v1/recommend", "application/json", bytes.NewReader(body))
				r := result{latency: time.Since(t0), err: err}
				if err == nil {
					r.status = resp.StatusCode
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	for _, b := range bodies {
		jobs <- b
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []time.Duration
	errors, non200 := 0, 0
	for _, r := range results {
		switch {
		case r.err != nil:
			errors++
		case r.status != http.StatusOK:
			non200++
		default:
			latencies = append(latencies, r.latency)
		}
	}
	fmt.Printf("requests: %d  ok: %d  non-200: %d  errors: %d\n",
		len(results), len(latencies), non200, errors)
	fmt.Printf("elapsed: %v  throughput: %.1f req/s\n",
		elapsed.Round(time.Millisecond), float64(len(results))/elapsed.Seconds())
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		fmt.Printf("latency: p50=%v p90=%v p95=%v p99=%v max=%v\n",
			pct(0.50), pct(0.90), pct(0.95), pct(0.99), latencies[len(latencies)-1])
	}
	if errors > 0 || non200 > 0 {
		return fmt.Errorf("%d transport errors, %d non-200 responses", errors, non200)
	}
	return nil
}
