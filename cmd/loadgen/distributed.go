// Distributed load generation and benchmark sweeps.
//
// One loadgen process can drive others: start workers with -serve on a few
// machines, then point a driver at them with -workers. The driver splits the
// request budget across the workers, ships each its slice of the run over
// the cluster comms protocol (same framing layer the serving cluster uses),
// and merges the returned stats — counters summed, latencies concatenated,
// elapsed taken as the longest wall clock, which is what makes the merged
// throughput honest for concurrent generators.
//
//	loadgen -serve :7181 -library recipes.jsonl &          # on each machine
//	loadgen -workers hostA:7181,hostB:7181 \
//	        -url http://coordinator:8080 -library recipes.jsonl -requests 20000
//
// With -sweep the driver instead runs a benchmark grid over
// -strategies/-ks/-batches/-zipfs (locally or fanned out over -workers) and
// emits one bench-JSON cell per grid point to -bench-json, in the shape
// `make bench` and scripts/benchdiff consume.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"goalrec"
	"goalrec/internal/comms"
)

// Loadgen frame types (distinct protocol from internal/cluster; the two
// never share a connection, so overlapping numbers would be harmless, but
// distinct ones keep captures readable).
const (
	// frameLoadRun carries a wireConfig request; the response is loadStats.
	frameLoadRun = comms.TypeApp + iota
	// frameLoadErr is the error response; payload {"error": "..."}.
	frameLoadErr
)

// wireConfig is the scalar part of config, shipped to -serve workers. The
// worker supplies its own library (loaded at startup) and discards output.
type wireConfig struct {
	URL         string  `json:"url"`
	Strategy    string  `json:"strategy"`
	K           int     `json:"k"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	DurationMs  int64   `json:"duration_ms"`
	ActivityLen int     `json:"activity_len"`
	Seed        uint64  `json:"seed"`
	Zipf        float64 `json:"zipf"`
	Overload    bool    `json:"overload"`
	Batch       int     `json:"batch"`
	Users       int     `json:"users"`
}

func toWire(cfg config) wireConfig {
	return wireConfig{
		URL:         cfg.url,
		Strategy:    cfg.strategy,
		K:           cfg.k,
		Concurrency: cfg.concurrency,
		Requests:    cfg.requests,
		DurationMs:  cfg.duration.Milliseconds(),
		ActivityLen: cfg.activityLen,
		Seed:        cfg.seed,
		Zipf:        cfg.zipf,
		Overload:    cfg.overload,
		Batch:       cfg.batch,
		Users:       cfg.users,
	}
}

func (wc wireConfig) toConfig(lib *goalrec.Library) config {
	return config{
		url:         wc.URL,
		strategy:    wc.Strategy,
		k:           wc.K,
		concurrency: wc.Concurrency,
		requests:    wc.Requests,
		duration:    time.Duration(wc.DurationMs) * time.Millisecond,
		activityLen: wc.ActivityLen,
		seed:        wc.Seed,
		zipf:        wc.Zipf,
		overload:    wc.Overload,
		batch:       wc.Batch,
		users:       wc.Users,
		lib:         lib,
	}
}

// serveLoadWorker runs the process as a remote load generator: it accepts
// run requests over comms, executes them against the target URL in the
// request, and returns the raw stats for the driver to merge.
func serveLoadWorker(addr string, lib *goalrec.Library) error {
	srv := comms.NewServer(func(_ context.Context, _ *comms.ServerConn, f comms.Frame) (uint8, []byte) {
		fail := func(err error) (uint8, []byte) {
			b, _ := json.Marshal(map[string]string{"error": err.Error()})
			return frameLoadErr, b
		}
		if f.Type != frameLoadRun {
			return fail(fmt.Errorf("unknown frame type %d", f.Type))
		}
		var wc wireConfig
		if err := json.Unmarshal(f.Payload, &wc); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen worker: running %d requests against %s (%s, k=%d)\n",
			wc.Requests, wc.URL, wc.Strategy, wc.K)
		stats, err := executeLoad(wc.toConfig(lib))
		if err != nil {
			return fail(err)
		}
		b, err := json.Marshal(stats)
		if err != nil {
			return fail(err)
		}
		return f.Type, b
	}, nil)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen worker listening on %s\n", addr)
	return srv.Serve(ln)
}

// executeDistributed splits cfg's request budget across the workers, runs
// the slices concurrently and merges the stats. Each worker gets a distinct
// seed so the fleet does not replay identical request streams in lockstep.
func executeDistributed(cfg config, workers []string) (loadStats, error) {
	per := cfg.requests / len(workers)
	rem := cfg.requests % len(workers)

	type outcome struct {
		stats loadStats
		err   error
	}
	outcomes := make([]outcome, len(workers))
	var wg sync.WaitGroup
	for i, addr := range workers {
		wcfg := toWire(cfg)
		wcfg.Requests = per
		if i < rem {
			wcfg.Requests++
		}
		wcfg.Seed = cfg.seed + uint64(i)*1_000_003
		if wcfg.Requests == 0 && cfg.duration == 0 {
			continue
		}
		payload, err := json.Marshal(wcfg)
		if err != nil {
			return loadStats{}, err
		}
		wg.Add(1)
		go func(i int, addr string, payload []byte) {
			defer wg.Done()
			conn, err := comms.Dial(addr)
			if err != nil {
				outcomes[i].err = fmt.Errorf("dialing worker %s: %w", addr, err)
				return
			}
			defer conn.Close()
			f, err := conn.Do(context.Background(), frameLoadRun, payload)
			if err != nil {
				outcomes[i].err = fmt.Errorf("worker %s: %w", addr, err)
				return
			}
			if f.Type == frameLoadErr {
				var ep struct {
					Error string `json:"error"`
				}
				_ = json.Unmarshal(f.Payload, &ep)
				outcomes[i].err = fmt.Errorf("worker %s: %s", addr, ep.Error)
				return
			}
			outcomes[i].err = json.Unmarshal(f.Payload, &outcomes[i].stats)
		}(i, addr, payload)
	}
	wg.Wait()

	var merged loadStats
	for i, o := range outcomes {
		if o.err != nil {
			return loadStats{}, fmt.Errorf("loadgen worker %d: %w", i, o.err)
		}
		merged.merge(o.stats)
	}
	return merged, nil
}

// executeAny runs cfg locally or fanned out over workers.
func executeAny(cfg config, workers []string) (loadStats, error) {
	if len(workers) > 0 {
		return executeDistributed(cfg, workers)
	}
	return executeLoad(cfg)
}

// sweepGrids are the benchmark grid axes.
type sweepGrids struct {
	strategies []string
	ks         []int
	batches    []int
	zipfs      []float64
}

// benchCell is one grid point in the bench-JSON shape scripts/benchdiff
// joins on (method, implementations) and gates on mean_latency_ms.
type benchCell struct {
	Method          string  `json:"method"`
	Implementations int     `json:"implementations"`
	MeanLatencyMS   float64 `json:"mean_latency_ms"`
	P99LatencyMS    float64 `json:"p99_latency_ms"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	OK              int     `json:"ok"`
	Failed          int     `json:"failed"`
}

// runSweep executes the full grid, printing one line per cell and writing
// the bench-JSON cells to benchJSON if set. Cells keep their failure counts
// instead of aborting the sweep; any failed cell fails the run at the end.
func runSweep(cfg config, grids sweepGrids, workers []string, benchJSON string) error {
	var cells []benchCell
	failed := 0
	for _, strat := range grids.strategies {
		for _, k := range grids.ks {
			for _, batch := range grids.batches {
				for _, z := range grids.zipfs {
					cc := cfg
					cc.strategy, cc.k, cc.batch, cc.zipf = strat, k, batch, z
					stats, err := executeAny(cc, workers)
					if err != nil {
						return err
					}
					cell := benchCell{
						Method:          fmt.Sprintf("loadgen/%s/k=%d/batch=%d/zipf=%g", strat, k, batch, z),
						Implementations: cfg.lib.NumImplementations(),
						OK:              stats.OK,
						Failed:          stats.Errors + stats.Unexpected,
					}
					if len(stats.LatenciesMs) > 0 {
						lat := append([]float64(nil), stats.LatenciesMs...)
						sort.Float64s(lat)
						var sum float64
						for _, l := range lat {
							sum += l
						}
						cell.MeanLatencyMS = sum / float64(len(lat))
						cell.P99LatencyMS = lat[int(0.99*float64(len(lat)-1))]
					}
					if stats.ElapsedMs > 0 {
						cell.ThroughputRPS = float64(stats.Requests) / (stats.ElapsedMs / 1000)
					}
					failed += cell.Failed
					fmt.Fprintf(cfg.out, "%-48s ok=%-6d mean=%.2fms p99=%.2fms %.1f req/s\n",
						cell.Method, cell.OK, cell.MeanLatencyMS, cell.P99LatencyMS, cell.ThroughputRPS)
					cells = append(cells, cell)
				}
			}
		}
	}
	if benchJSON != "" {
		data, err := json.MarshalIndent(cells, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "wrote %d cells to %s\n", len(cells), benchJSON)
	}
	if failed > 0 {
		return fmt.Errorf("%d requests failed across the sweep", failed)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in grid", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q in grid", p)
		}
		out = append(out, v)
	}
	return out, nil
}
