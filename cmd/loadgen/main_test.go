package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"goalrec"
	"goalrec/internal/server"
)

func loadTestLibrary(t *testing.T) *goalrec.Library {
	t.Helper()
	b := goalrec.NewBuilder()
	for _, impl := range [][]string{
		{"salad", "potatoes", "carrots", "pickles"},
		{"soup", "carrots", "onions"},
		{"stew", "potatoes", "onions", "beef"},
	} {
		if err := b.AddImplementation(impl[0], impl[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestRunLoadAllOK(t *testing.T) {
	lib := loadTestLibrary(t)
	ts := httptest.NewServer(server.New(lib, nil))
	defer ts.Close()
	var out bytes.Buffer
	err := runLoad(config{
		url: ts.URL, strategy: "breadth", k: 5,
		concurrency: 4, requests: 50, activityLen: 2, seed: 1,
		lib: lib, out: &out,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: 50") {
		t.Errorf("summary missing ok count:\n%s", out.String())
	}
}

// TestRunLoadBatchMode drives /v1/recommend/batch: 50 activities at -batch 8
// become 7 requests (6×8 + 1×2), all of which must succeed.
func TestRunLoadBatchMode(t *testing.T) {
	lib := loadTestLibrary(t)
	ts := httptest.NewServer(server.New(lib, nil))
	defer ts.Close()
	var out bytes.Buffer
	err := runLoad(config{
		url: ts.URL, strategy: "breadth", k: 5,
		concurrency: 4, requests: 50, activityLen: 2, seed: 1,
		batch: 8, lib: lib, out: &out,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "requests: 7  ok: 7") {
		t.Errorf("summary should show 7 batched requests:\n%s", out.String())
	}
}

// blockedGateServer returns a server whose single admission slot is held
// by a reload that blocks until the returned release func is called —
// every expensive request it sees is shed deterministically.
func blockedGateServer(t *testing.T, lib *goalrec.Library) (*httptest.Server, func()) {
	t.Helper()
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := server.New(lib, nil,
		server.WithReloader(func() (*goalrec.Library, error) {
			close(entered)
			<-release
			return lib, nil
		}),
		server.WithMaxInflight(1),
		server.WithAdmissionWait(time.Millisecond))
	ts := httptest.NewServer(srv)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Post(ts.URL+"/v1/reload", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	return ts, func() {
		close(release)
		<-done
		ts.Close()
	}
}

// TestRunLoadOverloadMode pins the shed accounting: with the gate held
// shut, every request is a 503 — a failure in strict mode, expected and
// reported in -overload mode.
func TestRunLoadOverloadMode(t *testing.T) {
	lib := loadTestLibrary(t)
	ts, release := blockedGateServer(t, lib)
	defer release()

	base := config{
		url: ts.URL, strategy: "breadth", k: 5,
		concurrency: 2, requests: 10, activityLen: 2, seed: 1,
		lib: lib,
	}

	var strict bytes.Buffer
	cfg := base
	cfg.out = &strict
	if err := runLoad(cfg); err == nil {
		t.Fatalf("strict mode accepted shed responses:\n%s", strict.String())
	}

	var overload bytes.Buffer
	cfg = base
	cfg.overload = true
	cfg.out = &overload
	if err := runLoad(cfg); err != nil {
		t.Fatalf("overload mode rejected shed responses: %v\n%s", err, overload.String())
	}
	if !strings.Contains(overload.String(), "shed(503): 10") {
		t.Errorf("summary missing shed count:\n%s", overload.String())
	}
}

// TestRunLoadDurationMode checks wall-clock mode terminates and cycles the
// request sample.
func TestRunLoadDurationMode(t *testing.T) {
	lib := loadTestLibrary(t)
	ts := httptest.NewServer(server.New(lib, nil))
	defer ts.Close()
	var out bytes.Buffer
	start := time.Now()
	err := runLoad(config{
		url: ts.URL, strategy: "breadth", k: 5,
		concurrency: 4, requests: 8, duration: 100 * time.Millisecond,
		activityLen: 2, seed: 1, lib: lib, out: &out,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("duration mode ran for %v", elapsed)
	}
}

// TestRunLoadZipfSampling runs with a Zipf exponent and checks the summary
// reports the skewed sampling mode while every request still succeeds.
func TestRunLoadZipfSampling(t *testing.T) {
	lib := loadTestLibrary(t)
	ts := httptest.NewServer(server.New(lib, nil))
	defer ts.Close()
	var out bytes.Buffer
	err := runLoad(config{
		url: ts.URL, strategy: "breadth", k: 5,
		concurrency: 4, requests: 50, activityLen: 2, seed: 1,
		zipf: 1.1, lib: lib, out: &out,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: 50") {
		t.Errorf("summary missing ok count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sampling: zipf(1.10)") {
		t.Errorf("summary missing zipf sampling mode:\n%s", out.String())
	}
}
