module goalrec

go 1.22
