package goalrec

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"goalrec/internal/faultfs"
)

// probeFast are store options tuned so degraded-mode tests converge quickly.
func probeFast(fsys faultfs.FS) StoreOptions {
	return StoreOptions{
		FS:            fsys,
		ProbeInterval: 5 * time.Millisecond,
		RecoverAfter:  2,
	}
}

func waitForMode(t *testing.T, s *Store, mode string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Status().Mode == mode {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("store never reached mode %q (now %q, last error %q)",
		mode, s.Status().Mode, s.Status().LastError)
}

// TestStoreDegradedReadOnlyAndRecovery is the full degraded-mode arc: a full
// disk rejects an ingest with ErrReadOnly (wrapped in ErrJournal), reads keep
// serving bit-identical rankings, and once space returns the write probe
// lifts the mode on its own and ingest resumes.
func TestStoreDegradedReadOnlyAndRecovery(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	s, err := OpenStore(t.TempDir(), probeFast(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.Engine()
	storeIngest(t, e, 0, 30)
	epoch, n := e.Epoch(), e.Len()
	want := storeRankings(t, e)

	inj.SetWriteBudget(0) // the disk is full
	_, err = e.AddImplementations([]Implementation{{Goal: "g", Actions: []string{"a"}}})
	if !errors.Is(err, ErrJournal) || !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ingest on a full disk = %v, want ErrJournal wrapping ErrReadOnly", err)
	}
	if e.Epoch() != epoch || e.Len() != n {
		t.Fatal("rejected ingest mutated the published library")
	}
	st := s.Status()
	if st.Mode != StorageReadOnly || st.LastError == "" || st.Degradations != 1 {
		t.Fatalf("status after degrade = %+v", st)
	}
	// Reads are untouched in read-only mode.
	if got := storeRankings(t, e); !reflect.DeepEqual(got, want) {
		t.Fatal("rankings changed while degraded")
	}
	// Writes stay rejected without touching the device.
	if _, err := s.Users().Append("u1", []string{"act-1"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("user append while degraded = %v, want ErrReadOnly", err)
	}

	inj.SetWriteBudget(-1) // space returns
	waitForMode(t, s, StorageHealthy)
	st = s.Status()
	if st.Recoveries != 1 || st.LastError != "" {
		t.Fatalf("status after recovery = %+v", st)
	}
	storeIngest(t, e, 100, 5)
	if e.Epoch() != epoch+1 {
		t.Fatalf("epoch after recovery ingest = %d, want %d", e.Epoch(), epoch+1)
	}

	// And nothing acknowledged is lost across a restart.
	wantEpoch, wantLen := e.Epoch(), e.Len()
	want = storeRankings(t, e)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(s.dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Engine().Epoch() != wantEpoch || s2.Engine().Len() != wantLen {
		t.Fatalf("restart after recovery: epoch %d len %d, want %d/%d",
			s2.Engine().Epoch(), s2.Engine().Len(), wantEpoch, wantLen)
	}
	if got := storeRankings(t, s2.Engine()); !reflect.DeepEqual(got, want) {
		t.Fatal("rankings changed across restart")
	}
}

// TestStoreWriteFaultTable drives every write-path fault class the ISSUE
// names — ENOSPC on append, fsync failure with -wal-sync, fsync failure on
// compaction's snapshot, ENOSPC on the WAL rewrite — and asserts the store
// lands in read-only mode without panicking or corrupting published state.
func TestStoreWriteFaultTable(t *testing.T) {
	for _, tc := range []struct {
		name    string
		sync    bool
		arm     func(inj *faultfs.Injector)
		trip    func(t *testing.T, s *Store) error
		degrade bool
	}{
		{
			name: "append-enospc",
			arm: func(inj *faultfs.Injector) {
				inj.Fail(faultfs.Rule{Op: faultfs.OpWriteAt, Path: "wal", Err: faultfs.ENOSPC})
			},
			trip: func(t *testing.T, s *Store) error {
				_, err := s.Engine().AddImplementations([]Implementation{{Goal: "g", Actions: []string{"a"}}})
				return err
			},
			degrade: true,
		},
		{
			name: "append-fsync-eio",
			sync: true,
			arm:  func(inj *faultfs.Injector) { inj.Fail(faultfs.Rule{Op: faultfs.OpSync, Path: "wal", Err: faultfs.EIO}) },
			trip: func(t *testing.T, s *Store) error {
				_, err := s.Engine().AddImplementations([]Implementation{{Goal: "g", Actions: []string{"a"}}})
				return err
			},
			degrade: true,
		},
		{
			name: "user-append-enospc",
			arm: func(inj *faultfs.Injector) {
				inj.Fail(faultfs.Rule{Op: faultfs.OpWriteAt, Path: "wal", Err: faultfs.ENOSPC})
			},
			trip: func(t *testing.T, s *Store) error {
				_, err := s.Users().Append("u", []string{"act-1"})
				return err
			},
			degrade: true,
		},
		{
			name: "compaction-snapshot-enospc",
			arm: func(inj *faultfs.Injector) {
				inj.Fail(faultfs.Rule{Op: faultfs.OpWrite, Path: ".snap-", Err: faultfs.ENOSPC})
			},
			trip: func(t *testing.T, s *Store) error {
				// Compaction failure alone is not fatal — the WAL still holds
				// everything — so it must NOT degrade the store.
				if err := s.Compact(); err == nil {
					t.Fatal("compaction with failing snapshot write succeeded")
				}
				return nil
			},
			degrade: false,
		},
		{
			name: "wal-rewrite-enospc",
			arm: func(inj *faultfs.Injector) {
				// The fresh log after compaction: fail its header write.
				inj.Fail(faultfs.Rule{Op: faultfs.OpTruncate, Path: "wal", Err: faultfs.ENOSPC})
			},
			trip: func(t *testing.T, s *Store) error {
				if err := s.Compact(); err == nil {
					t.Fatal("compaction with failing WAL rewrite succeeded")
				}
				return nil
			},
			degrade: false,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := faultfs.NewInjector(nil)
			opts := probeFast(inj)
			opts.SyncWAL = tc.sync
			s, err := OpenStore(t.TempDir(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			storeIngest(t, s.Engine(), 0, 20)
			want := storeRankings(t, s.Engine())

			tc.arm(inj)
			if err := tc.trip(t, s); tc.degrade && !errors.Is(err, ErrReadOnly) {
				t.Fatalf("tripping fault = %v, want ErrReadOnly", err)
			}
			if got, wantMode := s.Status().Mode, StorageHealthy; tc.degrade {
				if got != StorageReadOnly {
					t.Fatalf("mode = %q, want read_only", got)
				}
			} else if got != wantMode {
				t.Fatalf("mode = %q, want healthy", got)
			}
			if got := storeRankings(t, s.Engine()); !reflect.DeepEqual(got, want) {
				t.Fatal("published rankings changed under the fault")
			}
			inj.ClearRules()
		})
	}
}

// TestStoreTransientAppendErrorRetriesInPlace: an EINTR-class hiccup is
// absorbed by the bounded retry — the ingest succeeds and the store never
// leaves healthy mode.
func TestStoreTransientAppendErrorRetriesInPlace(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	s, err := OpenStore(t.TempDir(), probeFast(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeIngest(t, s.Engine(), 0, 5)

	inj.Fail(faultfs.Rule{Op: faultfs.OpWriteAt, Path: "wal", Err: faultfs.EINTR, Once: true})
	storeIngest(t, s.Engine(), 5, 5)
	if st := s.Status(); st.Mode != StorageHealthy || st.Degradations != 0 {
		t.Fatalf("transient error degraded the store: %+v", st)
	}
}

// TestStoreQuarantinesCorruptNewestSnapshot: corrupt the newest snapshot's
// body at rest; reopening must quarantine it (file preserved under
// *.quarantine), fall back to the previous snapshot plus the longer WAL
// tail, and serve bit-identical rankings.
func TestStoreQuarantinesCorruptNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 0, 30)
	if err := s.Compact(); err != nil { // snapshot generation 1
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 30, 20)
	if err := s.Compact(); err != nil { // snapshot generation 2
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 50, 7) // a WAL tail past the newest snapshot
	wantEpoch, wantLen := s.Engine().Epoch(), s.Engine().Len()
	want := storeRankings(t, s.Engine())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := snapshotEpochs(nil, dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshot generations, have %v (%v)", snaps, err)
	}
	newest := filepath.Join(dir, fmt.Sprintf("snap-%016d.gsnp", snaps[1]))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20 // silent body corruption: header CRC still valid
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Engine().Epoch() != wantEpoch || s2.Engine().Len() != wantLen {
		t.Fatalf("fallback recovery: epoch %d len %d, want %d/%d",
			s2.Engine().Epoch(), s2.Engine().Len(), wantEpoch, wantLen)
	}
	if got := storeRankings(t, s2.Engine()); !reflect.DeepEqual(got, want) {
		t.Fatal("rankings differ after falling back past the corrupt snapshot")
	}
	// Evidence preserved, not deleted.
	if _, err := os.Stat(newest + ".quarantine"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still present under its live name: %v", err)
	}
	st := s2.Status()
	if len(st.Quarantined) != 1 || !strings.HasSuffix(st.Quarantined[0], ".quarantine") || st.ScrubFailures == 0 {
		t.Fatalf("status after quarantine = %+v", st)
	}
}

// TestStoreScrubFindsAtRestCorruption: the periodic scrubber quarantines a
// snapshot corrupted while the store is running and compacts a replacement.
func TestStoreScrubFindsAtRestCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeIngest(t, s.Engine(), 0, 25)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Scrub(); err != nil {
		t.Fatalf("scrub of a clean store: %v", err)
	}
	if st := s.Status(); st.ScrubPasses != 1 {
		t.Fatalf("clean scrub not counted: %+v", st)
	}

	snaps, _ := snapshotEpochs(nil, dir)
	path := filepath.Join(dir, fmt.Sprintf("snap-%016d.gsnp", snaps[len(snaps)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.Scrub(); err == nil {
		t.Fatal("scrub missed at-rest corruption")
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("scrubber did not quarantine: %v", err)
	}
	// The post-scrub compaction restored snapshot coverage at the live epoch.
	snaps, err = snapshotEpochs(nil, dir)
	if err != nil || len(snaps) == 0 || snaps[len(snaps)-1] != s.Engine().Epoch() {
		t.Fatalf("coverage not restored: snapshots %v (err %v), engine epoch %d",
			snaps, err, s.Engine().Epoch())
	}
}

// TestStorePruneFailuresCountedAndRetried: failed prunes land in the metric
// and the file is retried — and removed — by the next compaction.
func TestStorePruneFailuresCountedAndRetried(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	opts := probeFast(inj)
	opts.KeepSnapshots = 1
	s, err := OpenStore(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	storeIngest(t, s.Engine(), 0, 10)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	inj.Fail(faultfs.Rule{Op: faultfs.OpRemove, Path: ".gsnp", Err: faultfs.EIO})
	storeIngest(t, s.Engine(), 10, 10)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.PruneFailures == 0 {
		t.Fatalf("failed prune not counted: %+v", st)
	}
	if snaps, _ := snapshotEpochs(inj, s.dir); len(snaps) != 2 {
		t.Fatalf("unpruned snapshot vanished anyway: %v", snaps)
	}

	inj.ClearRules()
	storeIngest(t, s.Engine(), 20, 10)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if snaps, _ := snapshotEpochs(inj, s.dir); len(snaps) != 1 {
		t.Fatalf("prune retry did not catch up: %v", snaps)
	}
}
