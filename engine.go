package goalrec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"goalrec/internal/core"
)

// Engine serves an evolving goal-implementation library from atomically
// swappable, epoch-numbered snapshots: the deployment shape of a recommender
// whose library keeps growing (new how-to stories, new recipes) while
// queries keep flowing.
//
// Writers — AddImplementation, AddImplementations, Swap — are serialized and
// publish a fresh immutable *Library at the next epoch. Readers call
// Snapshot, a wait-free atomic load, and can hold the result indefinitely:
// snapshots are never mutated, so recommenders built over one keep returning
// that epoch's results bit-identically. Appends extend the previous epoch's
// indexes incrementally (see core.DynamicLibrary), so publishing a small
// batch into a large library is sub-linear in library size.
//
// The action and goal vocabulary grows monotonically across epochs of one
// lineage and is shared by all its snapshots; Swap adopts the replacement
// library's vocabulary wholesale.
type Engine struct {
	mu    sync.Mutex // serializes writers
	vocab *core.Vocabulary
	dyn   *core.DynamicLibrary
	state atomic.Pointer[engineState]

	// gen numbers the library lineage: it stays fixed across appends and
	// epoch restores (posting rows only ever extend, so materialized
	// CounterViews can be carried forward by delta replay) and increments on
	// every Swap (ids are reassigned wholesale, so views must rebuild).
	gen uint64

	// journal, when non-nil, receives every publishing write before it is
	// applied (write-ahead). A Store attaches itself here; the zero engine
	// journals nothing.
	journal engineJournal
}

// engineJournal is the write-ahead hook a Store installs on an Engine: the
// engine calls logBatch under its writer lock before applying an ingest
// batch, and logSwap after a wholesale swap has been published.
type engineJournal interface {
	logBatch(epoch uint64, impls []Implementation) error
	logSwap(lib *Library)
}

// ErrJournal marks an ingest rejected because its write-ahead journal append
// failed: nothing was applied, and the store that owns the journal has
// latched the failure (see Store). Match with errors.Is.
var ErrJournal = errors.New("goalrec: journal append failed")

// engineState bundles one epoch's snapshot with its lazily built recommender
// set, keyed by strategy plus resolved options. Swapping the whole state
// pointer at publish time is what invalidates cached recommenders (and
// their strategy.NewCached entries) by epoch instead of letting them leak
// stale scores: every WithCache LRU lives in this map and dies with it.
type engineState struct {
	lib *Library
	gen uint64 // lineage generation, see Engine.gen

	mu   sync.Mutex
	recs map[string]Recommender
}

func newEngineState(lib *Library, gen uint64) *engineState {
	return &engineState{lib: lib, gen: gen, recs: make(map[string]Recommender)}
}

// NewEngine returns an empty Engine at epoch 0.
func NewEngine() *Engine {
	e := &Engine{vocab: core.NewVocabulary(), dyn: core.NewDynamicLibrary()}
	e.state.Store(newEngineState(&Library{lib: e.dyn.Snapshot(), vocab: e.vocab}, 0))
	return e
}

// NewEngineFromLibrary returns an Engine seeded with lib, published as the
// first epoch. The engine adopts lib's vocabulary: later ingests intern new
// names into it, which is safe for concurrent readers of older snapshots.
func NewEngineFromLibrary(lib *Library) *Engine {
	e := &Engine{vocab: lib.vocab, dyn: core.NewDynamicLibrary()}
	stamped := e.dyn.Swap(lib.lib)
	e.state.Store(newEngineState(&Library{lib: stamped, vocab: lib.vocab}, 0))
	return e
}

// Snapshot returns the current epoch's immutable library. It is wait-free
// and safe to call from any number of goroutines; the result remains valid
// (and epoch-consistent) for as long as the caller holds it.
func (e *Engine) Snapshot() *Library { return e.state.Load().lib }

// Epoch returns the current epoch number.
func (e *Engine) Epoch() uint64 { return e.Snapshot().Epoch() }

// Len returns the number of implementations in the current epoch.
func (e *Engine) Len() int { return e.Snapshot().NumImplementations() }

// AddImplementation ingests one implementation and publishes the next
// epoch. For sustained ingest prefer AddImplementations, which publishes
// once per batch.
func (e *Engine) AddImplementation(goal string, actions ...string) error {
	_, err := e.AddImplementations([]Implementation{{Goal: goal, Actions: actions}})
	return err
}

// AddImplementations ingests a batch, stopping at the first invalid
// implementation, and publishes whatever was added as the next epoch. It
// returns the number added; on error the earlier valid implementations of
// the batch are still published (mirroring core.DynamicLibrary semantics).
//
// When a journal is attached (Store), the batch's valid prefix is appended
// to it — at the epoch the publish will carry — before anything is applied.
// A journal failure rejects the whole batch with an error matching
// ErrJournal: nothing is published that the log does not hold.
func (e *Engine) AddImplementations(impls []Implementation) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	valid := 0
	var firstErr error
	for _, impl := range impls {
		if err := validateImplementation(impl); err != nil {
			firstErr = err
			break
		}
		valid++
	}
	if valid == 0 {
		return 0, firstErr
	}
	if e.journal != nil {
		if err := e.journal.logBatch(e.dyn.Epoch()+1, impls[:valid]); err != nil {
			return 0, fmt.Errorf("%w: %w", ErrJournal, err)
		}
	}
	added := 0
	for _, impl := range impls[:valid] {
		if err := e.addLocked(impl.Goal, impl.Actions); err != nil {
			// Unreachable after validation; surface it over the shape error.
			firstErr = err
			break
		}
		added++
	}
	if added > 0 {
		e.publishLocked()
	}
	return added, firstErr
}

// validateImplementation performs addLocked's full error surface without
// mutating anything, so a batch can be journaled before it is applied. The
// error texts match addLocked's exactly.
func validateImplementation(impl Implementation) error {
	if impl.Goal == "" {
		return errors.New("goalrec: empty goal name")
	}
	for _, a := range impl.Actions {
		if a == "" {
			return fmt.Errorf("goalrec: implementation of %q has an empty action name", impl.Goal)
		}
	}
	if len(impl.Actions) == 0 {
		return fmt.Errorf("goalrec: adding implementation of %q: %w", impl.Goal, core.ErrEmptyActivity)
	}
	return nil
}

func (e *Engine) addLocked(goal string, actions []string) error {
	if goal == "" {
		return errors.New("goalrec: empty goal name")
	}
	ids := make([]core.ActionID, len(actions))
	for i, a := range actions {
		if a == "" {
			return fmt.Errorf("goalrec: implementation of %q has an empty action name", goal)
		}
		ids[i] = core.ActionID(e.vocab.Actions.Intern(a))
	}
	g := core.GoalID(e.vocab.Goals.Intern(goal))
	if _, err := e.dyn.Add(g, ids); err != nil {
		return fmt.Errorf("goalrec: adding implementation of %q: %w", goal, err)
	}
	return nil
}

// publishLocked snapshots the dynamic core and installs it as the current
// epoch with a fresh (empty) recommender set.
func (e *Engine) publishLocked() *Library {
	lib := &Library{lib: e.dyn.Snapshot(), vocab: e.vocab}
	e.state.Store(newEngineState(lib, e.gen))
	return lib
}

// Swap replaces the engine's library wholesale with lib — typically a
// freshly re-loaded library file — publishing it as the next epoch. Readers
// holding older snapshots are unaffected. It returns the published snapshot,
// stamped with its new epoch.
func (e *Engine) Swap(lib *Library) *Library {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vocab = lib.vocab
	stamped := e.dyn.Swap(lib.lib)
	nl := &Library{lib: stamped, vocab: lib.vocab}
	e.gen++
	e.state.Store(newEngineState(nl, e.gen))
	if e.journal != nil {
		// A swap supersedes every journaled batch: the store persists the new
		// epoch as a full snapshot and resets the log.
		e.journal.logSwap(nl)
	}
	return nl
}

// newEngineAdopting seeds an Engine from a persisted snapshot, preserving
// the snapshot's epoch so the lineage resumes where the writing process
// stopped (unlike NewEngineFromLibrary, which starts a new lineage at
// epoch 1).
func newEngineAdopting(lib *Library) *Engine {
	e := &Engine{vocab: lib.vocab, dyn: core.NewDynamicLibrary()}
	e.dyn.Swap(lib.lib)
	if ep := lib.Epoch(); ep > 1 {
		// Swap stamped epoch 1; only ever move forward.
		if err := e.dyn.RestoreEpoch(ep); err != nil {
			panic(err) // unreachable: 1 < ep
		}
	}
	e.state.Store(newEngineState(&Library{lib: e.dyn.Snapshot(), vocab: lib.vocab}, 0))
	return e
}

// restoreEpoch forces the engine's epoch forward to ep and republishes, so a
// WAL replay lands on exactly the epoch the log recorded even if some
// batches were already covered by the base snapshot.
func (e *Engine) restoreEpoch(ep uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dyn.Epoch() == ep {
		return nil
	}
	if err := e.dyn.RestoreEpoch(ep); err != nil {
		return err
	}
	e.state.Store(newEngineState(&Library{lib: e.dyn.Snapshot(), vocab: e.vocab}, e.gen))
	return nil
}

// setJournal attaches (or detaches, with nil) the write-ahead journal.
func (e *Engine) setJournal(j engineJournal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = j
}

// Recommender returns a recommender over the current epoch's snapshot.
// Calls whose options resolve identically share one instance from the
// epoch's recommender set (recommenders are deterministic and concurrent-
// safe, so sharing — including a shared WithCache LRU — is sound). The
// result is bound to its snapshot: it stays consistent (and valid) after
// later epochs are published, and the per-epoch set is dropped wholesale on
// publish so no cached state outlives its library. For a handle that
// follows epochs instead, use LiveRecommender.
func (e *Engine) Recommender(s Strategy, opts ...RecommenderOption) (Recommender, error) {
	return e.recommenderFor(e.state.Load(), s, opts)
}

// recommenderFor returns (building on first use) st's shared recommender
// for the strategy/options pair.
func (e *Engine) recommenderFor(st *engineState, s Strategy, opts []RecommenderOption) (Recommender, error) {
	o := resolveRecOptions(opts)
	if o.err != nil {
		return nil, o.err
	}
	key := o.sharingKey(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec, ok := st.recs[key]; ok {
		return rec, nil
	}
	rec, err := st.lib.Recommender(s, opts...)
	if err != nil {
		return nil, err
	}
	st.recs[key] = rec
	return rec, nil
}

// LiveRecommender returns a recommender that follows the engine's epochs:
// every Recommend/RecommendContext call resolves the snapshot current at
// that moment, and a RecommendBatch resolves one snapshot for the whole
// batch. Because the per-epoch recommender sets are dropped on publish,
// the cached path (WithCache) can never serve rankings from a superseded
// library — an ingested implementation is visible on the very next call.
// Invalid options are reported here, at construction.
func (e *Engine) LiveRecommender(s Strategy, opts ...RecommenderOption) (Recommender, error) {
	if _, err := e.recommenderFor(e.state.Load(), s, opts); err != nil {
		return nil, err
	}
	return &liveRecommender{e: e, s: s, opts: opts}, nil
}

// liveRecommender resolves the engine's current epoch on every call. The
// options were validated at construction, so resolution cannot fail later:
// the epoch's recommender is rebuilt from the same option list.
type liveRecommender struct {
	e    *Engine
	s    Strategy
	opts []RecommenderOption
}

// current returns the recommender of the engine's current epoch.
func (l *liveRecommender) current() Recommender {
	rec, err := l.e.recommenderFor(l.e.state.Load(), l.s, l.opts)
	if err != nil {
		// Unreachable: the options were validated at construction and the
		// strategy constant cannot change.
		panic(err)
	}
	return rec
}

// Name implements Recommender.
func (l *liveRecommender) Name() string { return l.current().Name() }

// Recommend implements Recommender against the current epoch.
func (l *liveRecommender) Recommend(activity []string, k int) []Recommendation {
	return l.current().Recommend(activity, k)
}

// RecommendContext implements Recommender against the current epoch.
func (l *liveRecommender) RecommendContext(ctx context.Context, activity []string, k int) ([]Recommendation, error) {
	return l.current().RecommendContext(ctx, activity, k)
}

// RecommendBatch implements Recommender: the epoch is resolved once, so
// every activity of the batch scores against the same snapshot.
func (l *liveRecommender) RecommendBatch(ctx context.Context, activities [][]string, k int) []BatchResult {
	return l.current().RecommendBatch(ctx, activities, k)
}
