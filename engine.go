package goalrec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"goalrec/internal/core"
)

// Engine serves an evolving goal-implementation library from atomically
// swappable, epoch-numbered snapshots: the deployment shape of a recommender
// whose library keeps growing (new how-to stories, new recipes) while
// queries keep flowing.
//
// Writers — AddImplementation, AddImplementations, Swap — are serialized and
// publish a fresh immutable *Library at the next epoch. Readers call
// Snapshot, a wait-free atomic load, and can hold the result indefinitely:
// snapshots are never mutated, so recommenders built over one keep returning
// that epoch's results bit-identically. Appends extend the previous epoch's
// indexes incrementally (see core.DynamicLibrary), so publishing a small
// batch into a large library is sub-linear in library size.
//
// The action and goal vocabulary grows monotonically across epochs of one
// lineage and is shared by all its snapshots; Swap adopts the replacement
// library's vocabulary wholesale.
type Engine struct {
	mu    sync.Mutex // serializes writers
	vocab *core.Vocabulary
	dyn   *core.DynamicLibrary
	state atomic.Pointer[engineState]
}

// engineState bundles one epoch's snapshot with its lazily built recommender
// set. Swapping the whole state pointer at publish time is what invalidates
// cached recommenders (and their strategy.NewCached entries) by epoch
// instead of letting them leak stale scores.
type engineState struct {
	lib *Library

	mu   sync.Mutex
	recs map[Strategy]Recommender
}

func newEngineState(lib *Library) *engineState {
	return &engineState{lib: lib, recs: make(map[Strategy]Recommender)}
}

// NewEngine returns an empty Engine at epoch 0.
func NewEngine() *Engine {
	e := &Engine{vocab: core.NewVocabulary(), dyn: core.NewDynamicLibrary()}
	e.state.Store(newEngineState(&Library{lib: e.dyn.Snapshot(), vocab: e.vocab}))
	return e
}

// NewEngineFromLibrary returns an Engine seeded with lib, published as the
// first epoch. The engine adopts lib's vocabulary: later ingests intern new
// names into it, which is safe for concurrent readers of older snapshots.
func NewEngineFromLibrary(lib *Library) *Engine {
	e := &Engine{vocab: lib.vocab, dyn: core.NewDynamicLibrary()}
	stamped := e.dyn.Swap(lib.lib)
	e.state.Store(newEngineState(&Library{lib: stamped, vocab: lib.vocab}))
	return e
}

// Snapshot returns the current epoch's immutable library. It is wait-free
// and safe to call from any number of goroutines; the result remains valid
// (and epoch-consistent) for as long as the caller holds it.
func (e *Engine) Snapshot() *Library { return e.state.Load().lib }

// Epoch returns the current epoch number.
func (e *Engine) Epoch() uint64 { return e.Snapshot().Epoch() }

// Len returns the number of implementations in the current epoch.
func (e *Engine) Len() int { return e.Snapshot().NumImplementations() }

// AddImplementation ingests one implementation and publishes the next
// epoch. For sustained ingest prefer AddImplementations, which publishes
// once per batch.
func (e *Engine) AddImplementation(goal string, actions ...string) error {
	_, err := e.AddImplementations([]Implementation{{Goal: goal, Actions: actions}})
	return err
}

// AddImplementations ingests a batch, stopping at the first invalid
// implementation, and publishes whatever was added as the next epoch. It
// returns the number added; on error the earlier valid implementations of
// the batch are still published (mirroring core.DynamicLibrary semantics).
func (e *Engine) AddImplementations(impls []Implementation) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	added := 0
	var firstErr error
	for _, impl := range impls {
		if err := e.addLocked(impl.Goal, impl.Actions); err != nil {
			firstErr = err
			break
		}
		added++
	}
	if added > 0 {
		e.publishLocked()
	}
	return added, firstErr
}

func (e *Engine) addLocked(goal string, actions []string) error {
	if goal == "" {
		return errors.New("goalrec: empty goal name")
	}
	ids := make([]core.ActionID, len(actions))
	for i, a := range actions {
		if a == "" {
			return fmt.Errorf("goalrec: implementation of %q has an empty action name", goal)
		}
		ids[i] = core.ActionID(e.vocab.Actions.Intern(a))
	}
	g := core.GoalID(e.vocab.Goals.Intern(goal))
	if _, err := e.dyn.Add(g, ids); err != nil {
		return fmt.Errorf("goalrec: adding implementation of %q: %w", goal, err)
	}
	return nil
}

// publishLocked snapshots the dynamic core and installs it as the current
// epoch with a fresh (empty) recommender set.
func (e *Engine) publishLocked() *Library {
	lib := &Library{lib: e.dyn.Snapshot(), vocab: e.vocab}
	e.state.Store(newEngineState(lib))
	return lib
}

// Swap replaces the engine's library wholesale with lib — typically a
// freshly re-loaded library file — publishing it as the next epoch. Readers
// holding older snapshots are unaffected. It returns the published snapshot,
// stamped with its new epoch.
func (e *Engine) Swap(lib *Library) *Library {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vocab = lib.vocab
	stamped := e.dyn.Swap(lib.lib)
	nl := &Library{lib: stamped, vocab: lib.vocab}
	e.state.Store(newEngineState(nl))
	return nl
}

// Recommender returns a recommender over the current epoch's snapshot.
// Calls without options share one recommender per strategy from the epoch's
// recommender set; passing options builds a fresh instance. Either way the
// result is bound to its snapshot: it stays consistent (and valid) after
// later epochs are published, and the per-epoch set is dropped wholesale on
// publish so no cached state outlives its library.
func (e *Engine) Recommender(s Strategy, opts ...RecommenderOption) (Recommender, error) {
	st := e.state.Load()
	if len(opts) > 0 {
		return st.lib.Recommender(s, opts...)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec, ok := st.recs[s]; ok {
		return rec, nil
	}
	rec, err := st.lib.Recommender(s)
	if err != nil {
		return nil, err
	}
	st.recs[s] = rec
	return rec, nil
}
