// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index). Each benchmark measures the cost
// of computing one experiment's statistics over prepared environments;
// dataset generation, splitting and model fitting happen once per process.
//
//	go test -bench=. -benchmem
package goalrec_test

import (
	"sync"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/eval"
	"goalrec/internal/experiments"
	"goalrec/internal/strategy"
)

// benchConfig keeps the benchmark datasets small enough for iteration while
// preserving both connectivity regimes.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:         0.1,
		K:             10,
		KeepFrac:      0.3,
		MaxUsers:      150,
		Seed:          1,
		ALSFactors:    8,
		ALSIterations: 4,
	}
}

var (
	envOnce sync.Once
	foodEnv *experiments.Env
	lifeEnv *experiments.Env
	envErr  error
)

func envs(b *testing.B) (*experiments.Env, *experiments.Env) {
	envOnce.Do(func() {
		foodEnv, envErr = experiments.NewFoodMartEnv(benchConfig())
		if envErr == nil {
			lifeEnv, envErr = experiments.NewFortyThreeEnv(benchConfig())
		}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return foodEnv, lifeEnv
}

// BenchmarkTable2ResultOverlap regenerates Table 2 (overlap of goal-based vs
// standard top-10 lists) on both datasets.
func BenchmarkTable2ResultOverlap(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table2(food)
		experiments.Table2(life)
	}
}

// BenchmarkTable3PopularityCorrelation regenerates Table 3 (Pearson
// correlation of recommendations with the top-20 popular actions).
func BenchmarkTable3PopularityCorrelation(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(food)
		experiments.Table3(life)
	}
}

// BenchmarkTable4Completeness regenerates Table 4 / Figure 3 (goal
// completeness after following the recommendations).
func BenchmarkTable4Completeness(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(food)
		experiments.Table4(life)
	}
}

// BenchmarkTable5PairwiseSimilarity regenerates Table 5 (pairwise feature
// similarity inside each list; foodmart only, as in the paper).
func BenchmarkTable5PairwiseSimilarity(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table5(food)
	}
}

// BenchmarkFigure4AvgTPR regenerates Figure 4 (average TPR at top-5 and
// top-10).
func BenchmarkFigure4AvgTPR(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(food)
		experiments.Figure4(life)
	}
}

// BenchmarkFigure5ListFrequency regenerates Figure 5 (frequency of retrieved
// actions across recommendation lists).
func BenchmarkFigure5ListFrequency(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(food)
	}
}

// BenchmarkFigure6LibraryFrequency regenerates Figure 6 (library frequency
// of retrieved actions).
func BenchmarkFigure6LibraryFrequency(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(food)
	}
}

// BenchmarkTable6GoalMethodOverlap regenerates Table 6 (overlap among the
// goal-based methods).
func BenchmarkTable6GoalMethodOverlap(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table6(food)
		experiments.Table6(life)
	}
}

// BenchmarkFigure7Scalability runs one cell of the Figure 7 latency sweep
// (library construction + timed queries per strategy).
func BenchmarkFigure7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Scalability(experiments.ScalabilityConfig{
			Sizes: []int{5000}, Actions: 1500, Queries: 20, Seed: uint64(i),
		})
	}
}

// BenchmarkAblationBreadthVariants runs the Breadth weighting ablation (A1).
func BenchmarkAblationBreadthVariants(b *testing.B) {
	_, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationBreadth(life)
	}
}

// BenchmarkAblationBestMatchDistances runs the Best Match metric ablation
// (A2).
func BenchmarkAblationBestMatchDistances(b *testing.B) {
	_, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationBestMatch(life)
	}
}

// BenchmarkBeyondAccuracy runs the beyond-accuracy metric suite (B1).
func BenchmarkBeyondAccuracy(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.BeyondAccuracy(food)
	}
}

// BenchmarkRankingAccuracy runs the classical ranking metrics suite (B2).
func BenchmarkRankingAccuracy(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RankingAccuracy(food)
		experiments.RankingAccuracy(life)
	}
}

// BenchmarkSignificance runs the paired-bootstrap significance suite (B4).
func BenchmarkSignificance(b *testing.B) {
	_, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.SignificanceVsBaselines(life)
	}
}

// BenchmarkAblationHybridBlend runs the hybrid goal+content α sweep (A3).
func BenchmarkAblationHybridBlend(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationHybrid(food)
	}
}

// Per-strategy micro-benchmarks: the cost of a single top-10 query against
// the high-connectivity (foodmart-like) library.

func benchStrategy(b *testing.B, mk func(*core.Library) strategy.Recommender) {
	food, _ := envs(b)
	lib := food.Dataset.Library
	rec := mk(lib)
	inputs := food.Inputs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Recommend(inputs[i%len(inputs)], 10)
	}
}

func BenchmarkStrategyFocusCompleteness(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewFocus(l, strategy.Completeness)
	})
}

func BenchmarkStrategyFocusCloseness(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewFocus(l, strategy.Closeness)
	})
}

func BenchmarkStrategyBreadth(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewBreadth(l)
	})
}

func BenchmarkStrategyBestMatch(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewBestMatch(l)
	})
}

// BenchmarkCollectParallel measures the parallel evaluation loop the
// experiment harness uses.
func BenchmarkCollectParallel(b *testing.B) {
	food, _ := envs(b)
	rec := food.Methods["breadth"].Rec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Collect(rec, food.Inputs, 10)
	}
}
