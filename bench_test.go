// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index). Each benchmark measures the cost
// of computing one experiment's statistics over prepared environments;
// dataset generation, splitting and model fitting happen once per process.
//
//	go test -bench=. -benchmem
package goalrec_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"goalrec"
	"goalrec/internal/core"
	"goalrec/internal/eval"
	"goalrec/internal/experiments"
	"goalrec/internal/strategy"
)

// benchConfig keeps the benchmark datasets small enough for iteration while
// preserving both connectivity regimes.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:         0.1,
		K:             10,
		KeepFrac:      0.3,
		MaxUsers:      150,
		Seed:          1,
		ALSFactors:    8,
		ALSIterations: 4,
	}
}

var (
	envOnce sync.Once
	foodEnv *experiments.Env
	lifeEnv *experiments.Env
	envErr  error
)

func envs(b *testing.B) (*experiments.Env, *experiments.Env) {
	envOnce.Do(func() {
		foodEnv, envErr = experiments.NewFoodMartEnv(benchConfig())
		if envErr == nil {
			lifeEnv, envErr = experiments.NewFortyThreeEnv(benchConfig())
		}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return foodEnv, lifeEnv
}

// BenchmarkTable2ResultOverlap regenerates Table 2 (overlap of goal-based vs
// standard top-10 lists) on both datasets.
func BenchmarkTable2ResultOverlap(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table2(food)
		experiments.Table2(life)
	}
}

// BenchmarkTable3PopularityCorrelation regenerates Table 3 (Pearson
// correlation of recommendations with the top-20 popular actions).
func BenchmarkTable3PopularityCorrelation(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(food)
		experiments.Table3(life)
	}
}

// BenchmarkTable4Completeness regenerates Table 4 / Figure 3 (goal
// completeness after following the recommendations).
func BenchmarkTable4Completeness(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(food)
		experiments.Table4(life)
	}
}

// BenchmarkTable5PairwiseSimilarity regenerates Table 5 (pairwise feature
// similarity inside each list; foodmart only, as in the paper).
func BenchmarkTable5PairwiseSimilarity(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table5(food)
	}
}

// BenchmarkFigure4AvgTPR regenerates Figure 4 (average TPR at top-5 and
// top-10).
func BenchmarkFigure4AvgTPR(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(food)
		experiments.Figure4(life)
	}
}

// BenchmarkFigure5ListFrequency regenerates Figure 5 (frequency of retrieved
// actions across recommendation lists).
func BenchmarkFigure5ListFrequency(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(food)
	}
}

// BenchmarkFigure6LibraryFrequency regenerates Figure 6 (library frequency
// of retrieved actions).
func BenchmarkFigure6LibraryFrequency(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(food)
	}
}

// BenchmarkTable6GoalMethodOverlap regenerates Table 6 (overlap among the
// goal-based methods).
func BenchmarkTable6GoalMethodOverlap(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table6(food)
		experiments.Table6(life)
	}
}

// BenchmarkFigure7Scalability runs one cell of the Figure 7 latency sweep
// (library construction + timed queries per strategy).
func BenchmarkFigure7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Scalability(experiments.ScalabilityConfig{
			Sizes: []int{5000}, Actions: 1500, Queries: 20, Seed: uint64(i),
		})
	}
}

// BenchmarkAblationBreadthVariants runs the Breadth weighting ablation (A1).
func BenchmarkAblationBreadthVariants(b *testing.B) {
	_, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationBreadth(life)
	}
}

// BenchmarkAblationBestMatchDistances runs the Best Match metric ablation
// (A2).
func BenchmarkAblationBestMatchDistances(b *testing.B) {
	_, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationBestMatch(life)
	}
}

// BenchmarkBeyondAccuracy runs the beyond-accuracy metric suite (B1).
func BenchmarkBeyondAccuracy(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.BeyondAccuracy(food)
	}
}

// BenchmarkRankingAccuracy runs the classical ranking metrics suite (B2).
func BenchmarkRankingAccuracy(b *testing.B) {
	food, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RankingAccuracy(food)
		experiments.RankingAccuracy(life)
	}
}

// BenchmarkSignificance runs the paired-bootstrap significance suite (B4).
func BenchmarkSignificance(b *testing.B) {
	_, life := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.SignificanceVsBaselines(life)
	}
}

// BenchmarkAblationHybridBlend runs the hybrid goal+content α sweep (A3).
func BenchmarkAblationHybridBlend(b *testing.B) {
	food, _ := envs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationHybrid(food)
	}
}

// Per-strategy micro-benchmarks: the cost of a single top-10 query against
// the high-connectivity (foodmart-like) library.

func benchStrategy(b *testing.B, mk func(*core.Library) strategy.Recommender) {
	food, _ := envs(b)
	lib := food.Dataset.Library
	rec := mk(lib)
	inputs := food.Inputs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Recommend(inputs[i%len(inputs)], 10)
	}
}

func BenchmarkStrategyFocusCompleteness(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewFocus(l, strategy.Completeness)
	})
}

func BenchmarkStrategyFocusCloseness(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewFocus(l, strategy.Closeness)
	})
}

func BenchmarkStrategyBreadth(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewBreadth(l)
	})
}

func BenchmarkStrategyBestMatch(b *testing.B) {
	benchStrategy(b, func(l *core.Library) strategy.Recommender {
		return strategy.NewBestMatch(l)
	})
}

// BenchmarkRecommendBatch compares the batch fan-out against per-item
// sequential calls over one shared recommender; on multi-core hosts the
// batch path amortizes the worker pool across the whole activity set.
func BenchmarkRecommendBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bld := goalrec.NewBuilder()
	for i := 0; i < 20000; i++ {
		acts := make([]string, 2+rng.Intn(8))
		for j := range acts {
			acts[j] = fmt.Sprintf("a%d", rng.Intn(2000))
		}
		if err := bld.AddImplementation(fmt.Sprintf("g%d", i/2), acts...); err != nil {
			b.Fatal(err)
		}
	}
	lib := bld.Build()
	rec := lib.MustRecommender(goalrec.Breadth)
	activities := make([][]string, 64)
	for i := range activities {
		acts := make([]string, 5)
		for j := range acts {
			acts[j] = fmt.Sprintf("a%d", rng.Intn(2000))
		}
		activities[i] = acts
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, h := range activities {
				rec.Recommend(h, 10)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			goalrec.RecommendBatch(rec, activities, 10)
		}
	})
}

// BenchmarkCollectParallel measures the parallel evaluation loop the
// experiment harness uses.
func BenchmarkCollectParallel(b *testing.B) {
	food, _ := envs(b)
	rec := food.Methods["breadth"].Rec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Collect(rec, food.Inputs, 10)
	}
}

// dynBenchEnv caches one pre-grown library per size for the dynamic
// snapshot benchmarks: a DynamicLibrary ready to append into, and a Builder
// holding the same implementations for the cold-rebuild baseline.
type dynBenchEnv struct {
	dyn *core.DynamicLibrary
	bld core.Builder

	// One pre-drawn extra implementation, appended per iteration.
	extraGoal core.GoalID
	extraActs []core.ActionID
}

var (
	dynBenchMu   sync.Mutex
	dynBenchEnvs = map[int]*dynBenchEnv{}
)

func dynBenchEnvFor(b *testing.B, n int) *dynBenchEnv {
	b.Helper()
	dynBenchMu.Lock()
	defer dynBenchMu.Unlock()
	if e, ok := dynBenchEnvs[n]; ok {
		return e
	}
	const actionUniverse = 10_000
	rng := rand.New(rand.NewSource(1))
	e := &dynBenchEnv{dyn: core.NewDynamicLibrary()}
	acts := make([]core.ActionID, 8)
	for i := 0; i < n; i++ {
		for j := range acts {
			acts[j] = core.ActionID(rng.Intn(actionUniverse))
		}
		goal := core.GoalID(rng.Intn(n/20 + 1))
		if _, err := e.dyn.Add(goal, acts); err != nil {
			b.Fatal(err)
		}
		if _, err := e.bld.Add(goal, acts); err != nil {
			b.Fatal(err)
		}
	}
	e.dyn.Snapshot() // establish the flat base the appends extend
	e.extraGoal = core.GoalID(rng.Intn(n/20 + 1))
	e.extraActs = make([]core.ActionID, 8)
	for j := range e.extraActs {
		e.extraActs[j] = core.ActionID(rng.Intn(actionUniverse))
	}
	dynBenchEnvs[n] = e
	return e
}

// BenchmarkDynamicSnapshotAppend measures publishing one appended
// implementation out of a large library: the incremental path (Add +
// Snapshot on a DynamicLibrary, which extends the previous epoch's indexes
// and periodically compacts) against the cold baseline of re-deriving every
// index with Builder.Build. The incremental path is required to be at least
// an order of magnitude faster — that gap is the point of the epoch-based
// engine.
func BenchmarkDynamicSnapshotAppend(b *testing.B) {
	for _, n := range []int{250_000, 1_000_000} {
		e := dynBenchEnvFor(b, n)
		b.Run(fmt.Sprintf("incremental-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.dyn.Add(e.extraGoal, e.extraActs); err != nil {
					b.Fatal(err)
				}
				e.dyn.Snapshot()
			}
		})
		b.Run(fmt.Sprintf("coldrebuild-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.bld.Build()
			}
		})
	}
}
