package goalrec

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// artifactKinds renders the on-disk snapshot generations compactly, e.g.
// "full@3 delta@5 full@7", for shape assertions.
func artifactKinds(t *testing.T, dir string) string {
	t.Helper()
	arts, err := snapshotArtifacts(nil, dir)
	if err != nil {
		t.Fatalf("snapshotArtifacts: %v", err)
	}
	out := ""
	for i, a := range arts {
		if i > 0 {
			out += " "
		}
		kind := "full"
		if a.delta {
			kind = "delta"
		}
		out += fmt.Sprintf("%s@%d", kind, a.epoch)
	}
	return out
}

// TestStoreSnapshotDiffLifecycle drives compactions with SnapshotDiff on and
// asserts the artifact cadence — first a full (no base exists), then deltas
// until MaxDiffChain is reached, then the next full — and that restarting
// from a delta-topped directory reproduces the exact engine state.
func TestStoreSnapshotDiffLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{SnapshotDiff: true, MaxDiffChain: 2, CompressPostings: true}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := s.Engine()
	var epochs []uint64
	for i := 0; i < 4; i++ {
		storeIngest(t, e, i*50, 50)
		if err := s.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
		epochs = append(epochs, e.Epoch())
	}
	// Chain cap 2 wrote full, delta, delta, full; pruning (keep 2) then
	// dropped the middle delta but pinned the first full, which is still the
	// chain base of the retained delta.
	want := fmt.Sprintf("full@%d delta@%d full@%d", epochs[0], epochs[2], epochs[3])
	if got := artifactKinds(t, dir); got != want {
		t.Fatalf("artifacts after 4 compactions: %q, want %q", got, want)
	}

	// Land one more delta so the directory is delta-topped, then restart.
	storeIngest(t, e, 200, 50)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, wantTop := artifactKinds(t, dir), fmt.Sprintf("full@%d delta@%d", epochs[3], e.Epoch()); got != wantTop {
		t.Fatalf("artifacts after delta compaction: %q, want %q", got, wantTop)
	}
	storeIngest(t, e, 250, 10) // a WAL tail on top of the delta
	wantEpoch, wantLen := e.Epoch(), e.Len()
	wantRank := storeRankings(t, e)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e2 := s2.Engine()
	if e2.Epoch() != wantEpoch || e2.Len() != wantLen {
		t.Fatalf("restart from delta: epoch/len = %d/%d, want %d/%d", e2.Epoch(), e2.Len(), wantEpoch, wantLen)
	}
	if got := storeRankings(t, e2); !reflect.DeepEqual(got, wantRank) {
		t.Fatal("rankings changed across delta restart")
	}
	// The recovered engine keeps ingesting and compacting.
	storeIngest(t, e2, 260, 5)
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSnapshotDiffCorruptDeltaFallsBack rots the newest delta at rest;
// reopening must quarantine it and land on the full base plus the retained
// WAL tail — bit-identical state, one generation further back.
func TestStoreSnapshotDiffCorruptDeltaFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{SnapshotDiff: true, MaxDiffChain: 4}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := s.Engine()
	storeIngest(t, e, 0, 60)
	if err := s.Compact(); err != nil { // full
		t.Fatal(err)
	}
	storeIngest(t, e, 60, 40)
	if err := s.Compact(); err != nil { // delta on the full
		t.Fatal(err)
	}
	deltaFile := filepath.Join(dir, fmt.Sprintf("snap-%016d.gsnpd", e.Epoch()))
	if _, err := os.Stat(deltaFile); err != nil {
		t.Fatalf("delta artifact missing: %v", err)
	}
	wantEpoch, wantLen := e.Epoch(), e.Len()
	wantRank := storeRankings(t, e)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(deltaFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(deltaFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(deltaFile + ".quarantine"); err != nil {
		t.Fatalf("corrupt delta not quarantined: %v", err)
	}
	e2 := s2.Engine()
	if e2.Epoch() != wantEpoch || e2.Len() != wantLen {
		t.Fatalf("fallback recovery: epoch/len = %d/%d, want %d/%d", e2.Epoch(), e2.Len(), wantEpoch, wantLen)
	}
	if got := storeRankings(t, e2); !reflect.DeepEqual(got, wantRank) {
		t.Fatal("rankings changed after delta quarantine fallback")
	}
	st := s2.Status()
	if len(st.Quarantined) == 0 {
		t.Fatalf("quarantine not reported in status: %+v", st)
	}
}

// TestStoreSnapshotDiffPruningKeepsBases checks that a full snapshot needed
// as the base of a retained delta outlives the keep window, and is dropped
// once no retained delta references it.
func TestStoreSnapshotDiffPruningKeepsBases(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{SnapshotDiff: true, MaxDiffChain: 1, KeepSnapshots: 2}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.Engine()
	var epochs []uint64
	for i := 0; i < 5; i++ { // full, delta, full, delta, full
		storeIngest(t, e, i*40, 40)
		if err := s.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
		epochs = append(epochs, e.Epoch())
	}
	// Keep window holds {full@4, delta@3}; delta@3 pins full@2 beyond it.
	want := fmt.Sprintf("full@%d delta@%d full@%d", epochs[2], epochs[3], epochs[4])
	if got := artifactKinds(t, dir); got != want {
		t.Fatalf("artifacts after 5 compactions: %q, want %q", got, want)
	}
}
