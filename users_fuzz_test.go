package goalrec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzUserStore drives a random interleaving of user appends, deletes,
// recommends, same-lineage ingests, and library swaps, mirroring every
// mutation into a shadow history map. Each recommend must return exactly the
// shadow history and a ranking bit-identical to the from-scratch oracle on
// the engine's current snapshot — the property the materialized CounterView
// path promises.
func FuzzUserStore(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(77))
	f.Add(int64(-9), int64(1<<40))
	f.Add(int64(8675309), int64(-3))
	f.Fuzz(func(t *testing.T, libSeed, opSeed int64) {
		r := rand.New(rand.NewSource(libSeed))
		buildLib := func(shift int) *Library {
			b := NewBuilder()
			n := 10 + r.Intn(40)
			for i := 0; i < n; i++ {
				acts := make([]string, 1+r.Intn(5))
				for j := range acts {
					acts[j] = fmt.Sprintf("act-%d", (r.Intn(25)+shift)%30)
				}
				if err := b.AddImplementation(fmt.Sprintf("goal-%d", r.Intn(8)), acts...); err != nil {
					t.Fatal(err)
				}
			}
			return b.Build()
		}
		e := NewEngineFromLibrary(buildLib(0))
		// Small capacities so eviction and recreation paths run too.
		us := NewUserStore(e, UserStoreOptions{MaxUsers: 6, MaxViews: 3, Shards: 2})

		shadow := make(map[string][]string)
		appendShadow := func(id string, names []string) {
			h := shadow[id]
			for _, name := range names {
				dup := false
				for _, have := range h {
					if have == name {
						dup = true
						break
					}
				}
				if !dup {
					h = append(h, name)
				}
			}
			shadow[id] = h
		}

		op := rand.New(rand.NewSource(opSeed))
		ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for step := 0; step < 80; step++ {
			id := ids[op.Intn(len(ids))]
			switch op.Intn(10) {
			case 0: // swap to a fresh lineage
				e.Swap(buildLib(op.Intn(5)))
			case 1: // same-lineage ingest
				n := 1 + op.Intn(5)
				impls := make([]Implementation, n)
				for i := range impls {
					impls[i] = Implementation{
						Goal:    fmt.Sprintf("goal-%d", op.Intn(8)),
						Actions: []string{fmt.Sprintf("act-%d", op.Intn(30)), fmt.Sprintf("act-%d", op.Intn(30))},
					}
				}
				if _, err := e.AddImplementations(impls); err != nil {
					t.Fatal(err)
				}
			case 2: // delete
				err := us.Delete(id)
				if _, known := shadow[id]; known {
					if err != nil {
						t.Fatalf("delete %q: %v", id, err)
					}
					delete(shadow, id)
				} else if err == nil {
					t.Fatalf("delete of unknown %q succeeded", id)
				}
			default:
				names := make([]string, 1+op.Intn(4))
				for i := range names {
					names[i] = fmt.Sprintf("act-%d", op.Intn(35)) // some unresolvable
				}
				if op.Intn(3) > 0 { // append twice as often as recommend
					if _, err := us.Append(id, names); err != nil {
						_, known := shadow[id]
						if errors.Is(err, ErrTooManyUsers) && !known && len(shadow) >= 6 {
							continue // capacity refusal on a genuinely full store
						}
						t.Fatalf("append %q: %v", id, err)
					}
					appendShadow(id, names)
					continue
				}
				res, err := us.Recommend(context.Background(), id, allStrategies[op.Intn(len(allStrategies))], 5)
				if _, known := shadow[id]; !known {
					if err == nil {
						t.Fatalf("recommend for unknown %q succeeded", id)
					}
					continue
				}
				if err != nil {
					t.Fatalf("recommend %q: %v", id, err)
				}
				_ = res
			}
			// Every few steps, verify one known user end to end.
			if step%7 == 0 {
				for id, wantH := range shadow {
					gotH, err := us.History(id)
					if err != nil {
						t.Fatalf("history %q: %v", id, err)
					}
					if !reflect.DeepEqual(gotH, wantH) {
						t.Fatalf("history %q = %v, want %v", id, gotH, wantH)
					}
					s := allStrategies[op.Intn(len(allStrategies))]
					res, err := us.Recommend(context.Background(), id, s, 5)
					if err != nil {
						t.Fatalf("recommend %q/%s: %v", id, s, err)
					}
					rec, err := e.Recommender(s)
					if err != nil {
						t.Fatal(err)
					}
					want := rec.Recommend(wantH, 5)
					if !reflect.DeepEqual(res.Recommendations, want) {
						t.Fatalf("%s: materialized ranking for %q (h=%v) diverged:\ngot  %v\nwant %v",
							s, id, wantH, res.Recommendations, want)
					}
					break
				}
			}
		}
	})
}
