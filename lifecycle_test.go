// Request-lifecycle tests for the public API: RecommendContext on every
// recommender, ErrCanceled semantics, and the acceptance pin that a
// canceled context aborts an in-flight Best Match query at 1M
// implementations before it completes.
package goalrec_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"goalrec"
	"goalrec/internal/faultinject"
)

func lifecycleLibrary(t testing.TB) *goalrec.Library {
	t.Helper()
	b := goalrec.NewBuilder()
	add := func(goal string, actions ...string) {
		t.Helper()
		if err := b.AddImplementation(goal, actions...); err != nil {
			t.Fatal(err)
		}
	}
	add("olivier salad", "potatoes", "carrots", "pickles")
	add("mashed potatoes", "potatoes", "nutmeg", "butter")
	add("pan-fried carrots", "carrots", "nutmeg")
	return b.Build()
}

func TestRecommendContextPublicAPI(t *testing.T) {
	lib := lifecycleLibrary(t)
	for _, s := range goalrec.Strategies() {
		t.Run(string(s), func(t *testing.T) {
			rec := lib.MustRecommender(s)
			want := rec.Recommend([]string{"potatoes", "carrots"}, 5)
			got, err := rec.RecommendContext(context.Background(), []string{"potatoes", "carrots"}, 5)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("RecommendContext = %v, want %v", got, want)
			}

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := rec.RecommendContext(ctx, []string{"potatoes"}, 5); !errors.Is(err, goalrec.ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Errorf("canceled err = %v, want ErrCanceled wrapping context.Canceled", err)
			}
		})
	}
}

// TestRecommendContextBaselines pins the degraded contract for recommenders
// without internal checkpoints: the context is observed at entry.
func TestRecommendContextBaselines(t *testing.T) {
	lib := lifecycleLibrary(t)
	corpus := lib.NewCorpus([][]string{
		{"potatoes", "carrots"},
		{"potatoes", "nutmeg"},
		{"carrots", "nutmeg", "butter"},
	})
	rec := corpus.PopularityRecommender()
	if _, err := rec.RecommendContext(context.Background(), []string{"potatoes"}, 3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rec.RecommendContext(ctx, []string{"potatoes"}, 3); !errors.Is(err, goalrec.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

// millionLibrary builds the README's reference configuration — 1M
// implementations over a 10k-action space — once per test process.
var millionOnce struct {
	sync.Once
	lib *goalrec.Library
}

func millionLibrary(t testing.TB) *goalrec.Library {
	t.Helper()
	millionOnce.Do(func() {
		const (
			impls   = 1_000_000
			actions = 10_000
		)
		actionNames := make([]string, actions)
		for i := range actionNames {
			actionNames[i] = "a" + strconv.Itoa(i)
		}
		r := rand.New(rand.NewSource(1))
		b := goalrec.NewBuilder()
		buf := make([]string, 0, 16)
		for i := 0; i < impls; i++ {
			n := 2 + r.Intn(12)
			buf = buf[:0]
			for j := 0; j < n; j++ {
				buf = append(buf, actionNames[r.Intn(actions)])
			}
			if err := b.AddImplementation("g"+strconv.Itoa(i/2), buf...); err != nil {
				panic(err)
			}
		}
		millionOnce.lib = b.Build()
	})
	return millionOnce.lib
}

// TestBestMatchCancellationAtScale is the acceptance pin: a canceled
// context aborts an in-flight Best Match query over 1M implementations
// before it completes. faultinject.CancelAfterPolls(1) lets the query pass
// its entry check, then cancels deterministically at the first scoring
// checkpoint — no timing dependence — and the poll count proves the query
// was genuinely in flight when it died.
func TestBestMatchCancellationAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-implementation library build in -short mode")
	}
	lib := millionLibrary(t)
	if got := lib.NumImplementations(); got != 1_000_000 {
		t.Fatalf("library size = %d", got)
	}
	rec := lib.MustRecommender(goalrec.BestMatch)
	activity := []string{"a1", "a2", "a3", "a4", "a5"}

	// The uncanceled query completes and returns a full list.
	full, err := rec.RecommendContext(context.Background(), activity, 10)
	if err != nil || len(full) != 10 {
		t.Fatalf("baseline query = (%d results, %v)", len(full), err)
	}

	ctx := faultinject.CancelAfterPolls(1)
	start := time.Now()
	got, err := rec.RecommendContext(ctx, activity, 10)
	elapsed := time.Since(start)
	if !errors.Is(err, goalrec.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if len(got) != 0 {
		t.Errorf("aborted Best Match returned %d results", len(got))
	}
	if polls := ctx.Polls(); polls < 2 {
		t.Fatalf("query never reached an in-loop checkpoint (polls = %d)", polls)
	}
	t.Logf("aborted after %v (uncanceled query returns %d results)", elapsed, len(full))

	// The recommender must remain fully usable after an aborted query.
	again, err := rec.RecommendContext(context.Background(), activity, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(again) != fmt.Sprint(full) {
		t.Errorf("post-abort results diverge from baseline")
	}
}

// TestRecommendContextDeadlinePublicAPI covers the deadline flavor end to
// end: an expired deadline surfaces context.DeadlineExceeded through the
// public wrapper.
func TestRecommendContextDeadlinePublicAPI(t *testing.T) {
	lib := lifecycleLibrary(t)
	rec := lib.MustRecommender(goalrec.Breadth)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()
	if _, err := rec.RecommendContext(ctx, []string{"potatoes"}, 5); !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, goalrec.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

// TestRecommendBatchCanceled pins batch cancellation semantics: a done
// context drains every item with an ErrCanceled-wrapping per-item error,
// and results stay in input order.
func TestRecommendBatchCanceled(t *testing.T) {
	lib := lifecycleLibrary(t)
	rec := lib.MustRecommender(goalrec.Breadth)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	activities := [][]string{{"potatoes"}, {"carrots"}, {"nutmeg"}}
	results := rec.RecommendBatch(ctx, activities, 5)
	if len(results) != len(activities) {
		t.Fatalf("results = %d, want %d", len(results), len(activities))
	}
	for i, res := range results {
		if !errors.Is(res.Err, goalrec.ErrCanceled) || !errors.Is(res.Err, context.Canceled) {
			t.Errorf("item %d err = %v, want ErrCanceled wrapping context.Canceled", i, res.Err)
		}
	}

	// The same recommender answers the batch normally once the context is
	// live, each item bit-identical to its sequential query.
	for i, res := range rec.RecommendBatch(context.Background(), activities, 5) {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		want := rec.Recommend(activities[i], 5)
		if fmt.Sprint(res.Recommendations) != fmt.Sprint(want) {
			t.Errorf("item %d diverges from sequential:\n got %v\nwant %v", i, res.Recommendations, want)
		}
	}
}
