package goalrec

import "goalrec/internal/core"

// BlockCacheStats are the counters of the process-wide decoded-block cache
// serving block-compressed posting rows. The JSON field names are stable and
// surface verbatim in goalrecd's /v1/metrics.
type BlockCacheStats = core.BlockCacheStats

// SetBlockCacheBytes sizes the process-wide decoded-block cache shared by
// every compressed snapshot-backed library: decoded posting blocks are
// admitted by touch frequency and evicted LRU within the byte budget, so a
// larger-than-RAM library serves hot rows without re-decoding them per
// query. n <= 0 disables the cache (the default) and releases its memory.
// Raw (uncompressed) posting rows are served zero-copy from the mapping and
// never enter the cache.
func SetBlockCacheBytes(n int64) { core.SetBlockCacheBytes(n) }

// BlockCacheMetrics returns the decoded-block cache counters. All zero when
// the cache is disabled.
func BlockCacheMetrics() BlockCacheStats { return core.BlockCacheMetrics() }

// SetSnapshotMadvise toggles the paging hints applied when snapshots open:
// MADV_RANDOM on the sections queries touch point-wise (posting rows, name
// blobs) and MADV_WILLNEED on the small always-hot offset tables. Enabled by
// default; a no-op off Linux. Disabling is an escape hatch for workloads
// that scan snapshots sequentially.
func SetSnapshotMadvise(on bool) { core.SetSnapshotMadvise(on) }
