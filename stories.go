package goalrec

import "goalrec/internal/extract"

// Story is one free-text success story: the goal it is about and the text
// describing how the author achieved it. BuildFromStories turns a corpus of
// stories into a goal-implementation Library, reproducing the pipeline the
// paper used on the 43Things data.
type Story struct {
	Goal string
	Text string
}

// ExtractOptions tunes the text-extraction pipeline.
type ExtractOptions struct {
	// MaxPhraseWords caps the canonical action phrase length (default 4).
	MaxPhraseWords int
	// KeepVerblessSteps also keeps steps without a recognized verb, raising
	// recall on terse bullet lists at some precision cost.
	KeepVerblessSteps bool
	// Synonyms maps words onto canonical equivalents before phrase
	// assembly ("jogging" → "run"), so domain synonyms collapse onto one
	// action id. Both sides are stemmed internally.
	Synonyms map[string]string
}

// BuildFromStories extracts canonical action phrases from every story and
// assembles the resulting implementations into a Library. Stories whose text
// yields no actions are skipped; kept reports how many contributed.
func BuildFromStories(stories []Story, opts ExtractOptions) (lib *Library, kept int) {
	e := newExtractor(opts)
	raw := make([]extract.Story, len(stories))
	for i, s := range stories {
		raw[i] = extract.Story{Goal: s.Goal, Text: s.Text}
	}
	coreLib, vocab, kept := e.BuildLibrary(raw)
	return &Library{lib: coreLib, vocab: vocab}, kept
}

// ExtractActions runs only the extraction step on one story, returning the
// canonical action phrases in first-mention order. Useful for inspecting
// what BuildFromStories would index.
func ExtractActions(s Story, opts ExtractOptions) []string {
	return newExtractor(opts).ExtractStory(extract.Story{Goal: s.Goal, Text: s.Text})
}

// newExtractor assembles the pipeline an ExtractOptions describes.
func newExtractor(opts ExtractOptions) *extract.Extractor {
	e := extract.NewExtractor(extract.Options{MaxPhraseWords: opts.MaxPhraseWords})
	if opts.KeepVerblessSteps {
		e = e.WithVerblessSteps()
	}
	if len(opts.Synonyms) > 0 {
		e = e.WithSynonyms(opts.Synonyms)
	}
	return e
}
