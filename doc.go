// Package goalrec implements goal-based recommendation as introduced in
// "Modeling and Exploiting Goal and Action Associations for Recommendations"
// (Papadimitriou, Velegrakis, Koutrika — EDBT 2018).
//
// Instead of recommending items similar to a user's past (content-based
// filtering) or to the past of similar users (collaborative filtering),
// goal-based recommendation models a library of goal implementations —
// pairs of a goal and the set of actions that fulfill it, such as a recipe
// and its ingredients — and recommends the actions that best advance the
// goals a user's activity already points at.
//
// # Building a library
//
// A Library is assembled from (goal, action-set) implementations:
//
//	b := goalrec.NewBuilder()
//	b.AddImplementation("olivier salad", "potatoes", "carrots", "pickles")
//	b.AddImplementation("mashed potatoes", "potatoes", "nutmeg", "butter")
//	lib := b.Build()
//
// Libraries can also be loaded from JSON-lines files (LoadLibraryJSON) or
// extracted from free-text success stories (BuildFromStories).
//
// # Recommending
//
// Four ranking strategies from the paper are available, each implementing a
// different user policy:
//
//   - FocusCompleteness — finish the goal that is closest to done
//   - FocusCloseness — finish the goal that needs the fewest extra actions
//   - Breadth — advance as many goals as possible at once
//   - BestMatch — match the user's per-goal effort profile
//
// For example:
//
//	rec, _ := lib.Recommender(goalrec.Breadth)
//	for _, r := range rec.Recommend([]string{"potatoes", "carrots"}, 10) {
//		fmt.Println(r.Action, r.Score)
//	}
//
// # Baselines
//
// For comparison, the package bundles the standard recommenders the paper
// evaluates against: user-kNN collaborative filtering, ALS-WR matrix
// factorization, content-based filtering over action features, popularity,
// and association rules. See Corpus.
//
// The internal packages carry the full id-level machinery (indexes,
// evaluation protocol, experiment harness, synthetic dataset generators);
// cmd/experiments regenerates every table and figure of the paper.
package goalrec
