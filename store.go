package goalrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"goalrec/internal/core"
	"goalrec/internal/faultfs"
	"goalrec/internal/wal"
)

// Store gives an Engine a durable home directory: memory-mapped snapshots
// for instant cold starts plus a write-ahead log for everything ingested
// since the last snapshot.
//
//	store, err := goalrec.OpenStore(dir, goalrec.StoreOptions{})
//	...
//	engine := store.Engine()
//
// The directory holds snap-<epoch>.gsnp files (the core snapshot format,
// opened zero-copy via mmap) and one ingest.wal. Opening a store maps the
// newest loadable snapshot, replays the WAL records its epoch does not cover
// — reproducing id assignment by interning names in log order — truncates
// any torn tail, and resumes the lineage at the exact epoch the previous
// process last published.
//
// From then on the store rides the engine's write path: every ingest batch
// is appended (length-prefixed, checksummed) to the WAL before it is
// applied, so a crash between append and publish replays the batch on
// restart instead of losing it. A failed append rejects the ingest with
// ErrJournal — no acknowledged write is ever absent from the log. Transient
// append errors (the kernel's "try again" family) retry in place; a
// persistent failure flips the store into degraded read-only mode: further
// writes are rejected with ErrReadOnly while reads keep serving, and a
// background write probe recovers the store automatically once the log is
// writable again. Once the WAL outgrows CompactAtWALBytes, a background
// compaction writes the current epoch as a fresh snapshot and drops the log
// records older snapshots no longer need; Engine.Swap snapshots immediately,
// since a swap supersedes the whole log.
type Store struct {
	dir    string
	opts   StoreOptions
	fs     faultfs.FS
	engine *Engine
	users  *UserStore

	mu       sync.Mutex // serializes WAL appends and rotation
	w        *wal.Writer
	walEpoch uint64 // highest epoch appended to the WAL
	snapLow  uint64 // epoch covered by the newest snapshot on disk
	walFloor int64  // WAL size right after the last reset (carried user records)

	// stMu guards the degraded-mode state machine; it is never held across
	// I/O so status queries stay wait-free in practice.
	stMu       sync.Mutex
	readOnly   bool
	lastErr    error
	quar       []string // base names of quarantined snapshot files
	probing    bool
	healStreak int

	degradations  atomic.Uint64
	recoveries    atomic.Uint64
	pruneFailures atomic.Uint64
	scrubPasses   atomic.Uint64
	scrubFails    atomic.Uint64
	walTears      atomic.Uint64

	closed    chan struct{}
	closeOnce sync.Once
	bgWG      sync.WaitGroup // probe + scrub loops

	compacting atomic.Bool
	compactWG  sync.WaitGroup

	// unmaps releases the snapshot mappings opened over the store's
	// lifetime. Mappings stay live until Close: engine snapshots handed to
	// readers may reference them indefinitely.
	unmapMu sync.Mutex
	unmaps  []func() error
}

// ErrReadOnly marks a write rejected because the store is in degraded
// read-only mode after a persistent storage failure. Reads are unaffected;
// the store probes the log in the background and lifts the mode on its own
// once writes succeed again.
var ErrReadOnly = errors.New("goalrec: store is read-only (storage degraded)")

// Storage modes, as reported by StorageStatus.Mode.
const (
	StorageHealthy  = "healthy"
	StorageReadOnly = "read_only"
)

// StorageStatus is a point-in-time view of the store's persistence health,
// surfaced through /readyz and /v1/metrics.
type StorageStatus struct {
	Mode          string   // StorageHealthy or StorageReadOnly
	LastError     string   // most recent storage error; "" while healthy
	Quarantined   []string // base names of snapshots quarantined so far
	PruneFailures uint64   // failed snapshot prunes (retried next compaction)
	Degradations  uint64   // times the store entered read-only mode
	Recoveries    uint64   // times probation ended in automatic recovery
	ScrubPasses   uint64   // clean full scrubs
	ScrubFailures uint64   // corrupt artifacts scrubs have found
	WALTears      uint64   // mid-log WAL corruption events
}

// StoreOptions configures OpenStore. The zero value is production-ready.
type StoreOptions struct {
	// SyncWAL fsyncs every WAL append (durability against power loss). Off,
	// appends reach the page cache synchronously and disk asynchronously —
	// durable against process crashes, the common failure.
	SyncWAL bool
	// CompactAtWALBytes is the WAL size that triggers background compaction
	// (snapshot + log reset). <= 0 selects 4 MiB.
	CompactAtWALBytes int64
	// CompressPostings selects block-compressed posting lists for written
	// snapshots. Loads stay zero-copy either way; compression trades a
	// lazy per-block decode on scans for a smaller file and page-in set.
	CompressPostings bool
	// SnapshotDiff writes compactions as incremental delta snapshots
	// (snap-<epoch>.gsnpd) referencing the newest full snapshot's sections
	// by content checksum, so compaction at large N stops rewriting the
	// bytes that did not change. Every MaxDiffChain deltas (and whenever no
	// usable full base exists) a full snapshot is written instead. Recovery
	// materializes base+delta losslessly; a corrupt or missing link falls
	// back a generation exactly like a corrupt full snapshot.
	SnapshotDiff bool
	// MaxDiffChain caps how many consecutive delta snapshots may share one
	// full base before compaction writes the next full snapshot. <= 0
	// selects 4.
	MaxDiffChain int
	// WarmSnapshot pre-faults the adopted snapshot's pages on open instead
	// of demand-paging them on first query.
	WarmSnapshot bool
	// KeepSnapshots is how many generations of snapshot files to retain
	// (the newest is always kept). <= 0 selects 2.
	KeepSnapshots int
	// Logger receives compaction and recovery notes; nil disables logging.
	Logger *log.Logger
	// Users configures the per-user activity store the Store journals and
	// recovers alongside the library (capacities; zero values are defaults).
	Users UserStoreOptions
	// FS is the filesystem the store runs on; nil selects the real one.
	// Tests inject faults through it (internal/faultfs).
	FS faultfs.FS
	// ScrubInterval enables the background scrubber: every interval the
	// store re-verifies each snapshot's whole-file checksum and the WAL's
	// frame CRCs, quarantining corrupt snapshots. <= 0 disables the periodic
	// loop; the open-time scrub always runs.
	ScrubInterval time.Duration
	// ProbeInterval is the cadence of the degraded store's write probe.
	// <= 0 selects 1s.
	ProbeInterval time.Duration
	// RecoverAfter is how many consecutive clean write probes end probation
	// and restore writes. <= 0 selects 3.
	RecoverAfter int
}

const defaultCompactAtWALBytes = 4 << 20

// Transient append errors retry in place before the store degrades.
const (
	transientRetries = 3
	transientBackoff = time.Millisecond
)

// isTransientIOErr reports whether err is worth retrying in place: the
// kernel-level "try again" family, not a condition — a full disk, a dead
// device — that an immediate retry cannot fix.
func isTransientIOErr(err error) bool {
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

func (o StoreOptions) compactAt() int64 {
	if o.CompactAtWALBytes <= 0 {
		return defaultCompactAtWALBytes
	}
	return o.CompactAtWALBytes
}

func (o StoreOptions) keep() int {
	if o.KeepSnapshots <= 0 {
		return 2
	}
	return o.KeepSnapshots
}

func (o StoreOptions) maxChain() int {
	if o.MaxDiffChain <= 0 {
		return 4
	}
	return o.MaxDiffChain
}

func (o StoreOptions) probeEvery() time.Duration {
	if o.ProbeInterval <= 0 {
		return time.Second
	}
	return o.ProbeInterval
}

func (o StoreOptions) recoverAfter() int {
	if o.RecoverAfter <= 0 {
		return 3
	}
	return o.RecoverAfter
}

func (s *Store) logf(format string, args ...interface{}) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: "+format, args...)
	}
}

func (s *Store) walPath() string { return filepath.Join(s.dir, "ingest.wal") }

func (s *Store) snapPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%016d.gsnp", epoch))
}

func (s *Store) deltaPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%016d.gsnpd", epoch))
}

// snapArtifact is one on-disk snapshot generation: a self-contained full
// snapshot (.gsnp) or an incremental delta (.gsnpd) that needs its full base
// to restore.
type snapArtifact struct {
	epoch uint64
	delta bool
}

func (s *Store) artifactPath(a snapArtifact) string {
	if a.delta {
		return s.deltaPath(a.epoch)
	}
	return s.snapPath(a.epoch)
}

// snapshotArtifacts lists every snapshot generation in dir — full and delta —
// ascending by epoch. A full snapshot shadows a delta at the same epoch (the
// self-contained artifact always wins). Quarantined and temp files never
// parse as live artifacts.
func snapshotArtifacts(fsys faultfs.FS, dir string) ([]snapArtifact, error) {
	ents, err := faultfs.Or(fsys).ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []snapArtifact
	for _, ent := range ents {
		name := ent.Name()
		const pre = "snap-"
		if !strings.HasPrefix(name, pre) {
			continue
		}
		rest := name[len(pre):]
		var delta bool
		switch {
		case strings.HasSuffix(rest, ".gsnpd"):
			delta = true
			rest = rest[:len(rest)-len(".gsnpd")]
		case strings.HasSuffix(rest, ".gsnp"):
			rest = rest[:len(rest)-len(".gsnp")]
		default:
			continue
		}
		if rest == "" {
			continue
		}
		epoch, perr := strconv.ParseUint(rest, 10, 64)
		if perr != nil {
			continue
		}
		out = append(out, snapArtifact{epoch: epoch, delta: delta})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].epoch != out[j].epoch {
			return out[i].epoch < out[j].epoch
		}
		return !out[i].delta && out[j].delta
	})
	dedup := out[:0]
	for _, a := range out {
		if n := len(dedup); n > 0 && dedup[n-1].epoch == a.epoch {
			continue
		}
		dedup = append(dedup, a)
	}
	return dedup, nil
}

// readSnapshotFile reads a whole snapshot artifact through the store's
// (possibly fault-injected) filesystem.
func readSnapshotFile(fsys faultfs.FS, path string) ([]byte, error) {
	f, err := faultfs.Or(fsys).Open(path)
	if err != nil {
		return nil, err
	}
	data, rerr := io.ReadAll(f)
	cerr := f.Close()
	if rerr != nil {
		return nil, rerr
	}
	if cerr != nil {
		return nil, cerr
	}
	return data, nil
}

// snapshotEpochs lists the epochs of the snapshot files present in dir,
// ascending. Names are matched strictly — quarantined files
// (snap-N.gsnp.quarantine) and temp files never parse as live snapshots.
func snapshotEpochs(fsys faultfs.FS, dir string) ([]uint64, error) {
	ents, err := faultfs.Or(fsys).ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		name := ent.Name()
		const pre, suf = "snap-", ".gsnp"
		if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
			continue
		}
		mid := name[len(pre) : len(name)-len(suf)]
		if mid == "" {
			continue
		}
		epoch, perr := strconv.ParseUint(mid, 10, 64)
		if perr != nil {
			continue
		}
		out = append(out, epoch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// quarantine renames a corrupt snapshot aside as <name>.quarantine —
// evidence is preserved for forensics, never deleted — so recovery, pruning
// and future scrubs stop considering it.
func (s *Store) quarantine(path string, cause error) {
	qpath := path + ".quarantine"
	if err := s.fs.Rename(path, qpath); err != nil {
		s.logf("quarantining %s: %v", filepath.Base(path), err)
		return
	}
	s.stMu.Lock()
	s.quar = append(s.quar, filepath.Base(qpath))
	s.stMu.Unlock()
	s.logf("quarantined %s: %v", filepath.Base(path), cause)
}

// adoptDelta tries to restore the delta artifact at epoch: scrub the delta,
// scrub its full base, materialize the chain in memory and open the result.
// A nil, nil return means recovery should fall back a generation — the delta
// or its base was quarantined as proven-corrupt, or the base is gone and the
// delta is orphaned. Only environmental failures return an error and fail
// the open. Bases quarantined here are recorded in skip so the outer loop
// does not try (and fail) to scrub the renamed file again.
func (s *Store) adoptDelta(epoch uint64, skip map[uint64]bool) (*core.Snapshot, error) {
	path := s.deltaPath(epoch)
	if err := core.ScrubSnapshotFile(s.fs, path); err != nil {
		if !errors.Is(err, core.ErrCorruptSnapshot) {
			return nil, fmt.Errorf("goalrec: scrubbing delta %s: %w", filepath.Base(path), err)
		}
		s.scrubFails.Add(1)
		s.quarantine(path, err)
		s.logf("delta %s failed its open-time scrub: %v (falling back)", filepath.Base(path), err)
		return nil, nil
	}
	_, baseEpoch, err := core.SnapshotDeltaInfo(s.fs, path)
	if err != nil {
		return nil, fmt.Errorf("goalrec: reading delta %s header: %w", filepath.Base(path), err)
	}
	basePath := s.snapPath(baseEpoch)
	if err := core.ScrubSnapshotFile(s.fs, basePath); err != nil {
		switch {
		case errors.Is(err, core.ErrCorruptSnapshot):
			s.scrubFails.Add(1)
			s.quarantine(basePath, err)
			skip[baseEpoch] = true
			s.logf("base %s of delta epoch %d failed its scrub: %v (falling back)", filepath.Base(basePath), epoch, err)
			return nil, nil
		case errors.Is(err, fs.ErrNotExist):
			// The base is simply gone — the delta is healthy evidence of an
			// orphaned chain, not corruption; leave it in place.
			s.logf("delta epoch %d is orphaned: base %s missing (falling back)", epoch, filepath.Base(basePath))
			return nil, nil
		default:
			return nil, fmt.Errorf("goalrec: scrubbing base %s: %w", filepath.Base(basePath), err)
		}
	}
	deltaBytes, err := readSnapshotFile(s.fs, path)
	if err != nil {
		return nil, fmt.Errorf("goalrec: reading delta %s: %w", filepath.Base(path), err)
	}
	baseBytes, err := readSnapshotFile(s.fs, basePath)
	if err != nil {
		return nil, fmt.Errorf("goalrec: reading base %s: %w", filepath.Base(basePath), err)
	}
	base, err := core.NewSnapshotBase(baseBytes)
	if err == nil {
		var img []byte
		if img, err = core.MaterializeDelta(deltaBytes, base); err == nil {
			snap, oerr := core.OpenSnapshotBytes(img)
			if oerr != nil {
				// Materialization verified every referenced prefix and the
				// whole-image checksum, so this is a logic failure, not rot.
				return nil, fmt.Errorf("goalrec: opening materialized delta epoch %d: %w", epoch, oerr)
			}
			return snap, nil
		}
	}
	// Both files scrub clean yet the chain does not materialize: the delta
	// references a base generation that no longer exists (for example a
	// rewritten full at the same epoch). The delta is the stale artifact —
	// move it aside and fall back.
	s.scrubFails.Add(1)
	s.quarantine(path, err)
	s.logf("materializing delta epoch %d over base %d: %v (falling back)", epoch, baseEpoch, err)
	return nil, nil
}

// OpenStore opens (creating if needed) the persistent store at dir and
// recovers its engine: newest loadable snapshot mmap-first, then the WAL
// tail on top. The returned store owns the snapshot mappings and the WAL
// handle; Close it after the engine is no longer serving.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	fsys := faultfs.Or(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, fs: fsys, closed: make(chan struct{})}

	arts, err := snapshotArtifacts(fsys, dir)
	if err != nil {
		return nil, err
	}
	// Newest verifiable snapshot wins. Every candidate is scrubbed in full
	// before adoption — the open-time scrub — and a corrupt one (torn writes
	// are impossible, snapshots rename into place, but disks rot) is
	// quarantined rather than deleted, then recovery falls back a generation.
	// Delta artifacts additionally scrub their full base and materialize in
	// memory; a broken link anywhere in the chain falls back the same way.
	// The WAL retains every batch past the oldest retained full snapshot, so
	// the fallback replays a longer tail and lands on the same state.
	skip := map[uint64]bool{}
	for i := len(arts) - 1; i >= 0; i-- {
		art := arts[i]
		var snap *core.Snapshot
		var path string
		if art.delta {
			path = s.deltaPath(art.epoch)
			snap, err = s.adoptDelta(art.epoch, skip)
			if err != nil {
				return nil, err
			}
			if snap == nil {
				continue
			}
		} else {
			if skip[art.epoch] {
				continue // quarantined moments ago as a rotted delta base
			}
			path = s.snapPath(art.epoch)
			if err := core.ScrubSnapshotFile(fsys, path); err != nil {
				// Quarantine only proven corruption. An I/O error reading the file
				// says nothing about the bytes at rest — renaming a possibly-healthy
				// newest generation aside on a flaky read would itself lose data, so
				// that fails the open instead.
				if !errors.Is(err, core.ErrCorruptSnapshot) {
					return nil, fmt.Errorf("goalrec: scrubbing snapshot %s: %w", filepath.Base(path), err)
				}
				s.scrubFails.Add(1)
				s.quarantine(path, err)
				s.logf("snapshot %s failed its open-time scrub: %v (falling back)", filepath.Base(path), err)
				continue
			}
			snap, err = core.OpenSnapshotFS(fsys, path)
			if err != nil {
				// The scrub just proved the bytes sound, so this is environmental
				// (open/stat/mmap), not corruption.
				return nil, fmt.Errorf("goalrec: mapping snapshot %s: %w", filepath.Base(path), err)
			}
		}
		vocab := snap.Vocabulary()
		if vocab == nil {
			_ = snap.Close()
			s.logf("snapshot %s has no vocabulary (falling back)", filepath.Base(path))
			continue
		}
		if opts.WarmSnapshot {
			snap.Warmup()
		}
		s.engine = newEngineAdopting(&Library{lib: snap.Library(), vocab: vocab})
		s.snapLow = snap.Library().Epoch()
		s.unmaps = append(s.unmaps, snap.Close)
		break
	}
	if s.engine == nil {
		s.engine = NewEngine()
	}
	s.users = NewUserStore(s.engine, opts.Users)

	// Replay the WAL tail. Ingest batches apply only beyond the adopted
	// snapshot's epoch; user records always apply (snapshots never cover user
	// state) and replay in log order, so restart reproduces every history
	// bit-identically — including append/delete interleavings.
	base := s.engine.Epoch()
	replayed := 0
	validSize, err := wal.ReplayFS(fsys, s.walPath(), func(payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("goalrec: empty WAL record after epoch %d", s.engine.Epoch())
		}
		switch payload[0] {
		case walKindBatch:
			epoch, impls, err := decodeBatch(payload)
			if err != nil {
				return fmt.Errorf("goalrec: WAL record after epoch %d: %w", s.engine.Epoch(), err)
			}
			s.walEpoch = epoch
			if epoch <= base {
				return nil // already covered by the snapshot
			}
			if _, err := s.engine.AddImplementations(impls); err != nil {
				return fmt.Errorf("goalrec: replaying WAL batch at epoch %d: %w", epoch, err)
			}
			return s.engine.restoreEpoch(epoch)
		case walKindUserAppend:
			id, names, err := decodeUserAppend(payload)
			if err != nil {
				return fmt.Errorf("goalrec: WAL user-append record: %w", err)
			}
			if err := s.users.applyReplayAppend(id, names); err != nil {
				// Capacity may have been lowered since the record was written;
				// dropping the user beats refusing to open the store.
				s.logf("replaying user-append for %q: %v (skipped)", id, err)
			}
			return nil
		case walKindUserDelete:
			id, err := decodeUserDelete(payload)
			if err != nil {
				return fmt.Errorf("goalrec: WAL user-delete record: %w", err)
			}
			s.users.applyReplayDelete(id)
			return nil
		default:
			return fmt.Errorf("goalrec: unknown WAL record kind %d", payload[0])
		}
	})
	if err != nil {
		s.closeMaps()
		return nil, err
	}
	if e := s.engine.Epoch(); e > base {
		replayed = int(e - base)
	}
	if replayed > 0 {
		s.logf("replayed %d WAL batches on top of epoch %d, resuming at epoch %d", replayed, base, s.engine.Epoch())
	}

	w, err := wal.OpenWriterFS(fsys, s.walPath(), validSize, opts.SyncWAL)
	if err != nil {
		s.closeMaps()
		return nil, err
	}
	s.w = w
	s.engine.setJournal(s)
	s.users.setJournal(s)
	if opts.ScrubInterval > 0 {
		s.bgWG.Add(1)
		go s.scrubLoop()
	}
	return s, nil
}

// Engine returns the recovered engine. Its ingests and swaps are journaled
// by this store for as long as the store stays open.
func (s *Store) Engine() *Engine { return s.engine }

// Users returns the WAL-backed per-user activity store recovered alongside
// the engine. Appends and deletes are journaled for as long as the store
// stays open; restart replays them so histories come back bit-identically.
func (s *Store) Users() *UserStore { return s.users }

// Err returns the storage error the store is degraded on, or nil while it is
// healthy. Unlike the pre-degraded-mode behavior this is not sticky: the
// background write probe clears it once the log proves writable again.
func (s *Store) Err() error {
	s.stMu.Lock()
	defer s.stMu.Unlock()
	if s.readOnly {
		return s.readOnlyErrLocked()
	}
	return nil
}

// Status reports the store's persistence health for /readyz and /v1/metrics.
func (s *Store) Status() StorageStatus {
	s.stMu.Lock()
	st := StorageStatus{
		Mode:        StorageHealthy,
		Quarantined: append([]string(nil), s.quar...),
	}
	if s.readOnly {
		st.Mode = StorageReadOnly
		if s.lastErr != nil {
			st.LastError = s.lastErr.Error()
		}
	}
	s.stMu.Unlock()
	st.PruneFailures = s.pruneFailures.Load()
	st.Degradations = s.degradations.Load()
	st.Recoveries = s.recoveries.Load()
	st.ScrubPasses = s.scrubPasses.Load()
	st.ScrubFailures = s.scrubFails.Load()
	st.WALTears = s.walTears.Load()
	return st
}

func (s *Store) readOnlyErrLocked() error {
	if s.lastErr != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, s.lastErr)
	}
	return ErrReadOnly
}

// degrade flips the store into read-only mode on a persistent storage error
// and starts the recovery probe. It returns the error writers surface, which
// wraps ErrReadOnly.
func (s *Store) degrade(err error) error {
	s.stMu.Lock()
	defer s.stMu.Unlock()
	if !s.readOnly {
		s.readOnly = true
		s.degradations.Add(1)
		s.logf("storage degraded, serving read-only: %v", err)
	}
	s.lastErr = err
	s.healStreak = 0
	if !s.probing {
		s.probing = true
		s.bgWG.Add(1)
		go s.probeLoop()
	}
	return fmt.Errorf("%w: %w", ErrReadOnly, err)
}

// probeLoop is the degraded store's probation: every ProbeInterval it runs a
// write probe against the log, and RecoverAfter consecutive clean probes end
// the read-only mode. It exits on recovery or store close.
func (s *Store) probeLoop() {
	defer s.bgWG.Done()
	t := time.NewTicker(s.opts.probeEvery())
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
		}
		if s.probeOnce() {
			return
		}
	}
}

// probeOnce runs one write probe — wal.Writer.Recover, a truncate-to-acked
// plus fsync, which both tests the device and discards anything a failed
// append tore — and reports whether probation just ended in recovery.
func (s *Store) probeOnce() bool {
	s.mu.Lock()
	err := s.w.Recover()
	if err != nil && errors.Is(err, os.ErrClosed) {
		// The writer lost its handle — a log rotation closed the old log and
		// could not open its successor. The sealed log is intact on disk;
		// reattach at its replayed size and probe that instead.
		if size, rerr := wal.ReplayFS(s.fs, s.walPath(), func([]byte) error { return nil }); rerr == nil {
			if w, oerr := wal.OpenWriterFS(s.fs, s.walPath(), size, s.opts.SyncWAL); oerr == nil {
				s.w = w
				err = s.w.Recover()
			}
		}
	}
	s.mu.Unlock()
	s.stMu.Lock()
	if err != nil {
		s.healStreak = 0
		s.lastErr = err
		s.stMu.Unlock()
		return false
	}
	s.healStreak++
	if s.healStreak < s.opts.recoverAfter() {
		s.stMu.Unlock()
		return false
	}
	s.readOnly = false
	s.lastErr = nil
	s.probing = false
	s.recoveries.Add(1)
	s.stMu.Unlock()
	s.logf("storage recovered after %d clean write probes; writes resume", s.opts.recoverAfter())
	// A compaction right after recovery re-persists everything the degraded
	// window could not — most importantly a swap whose snapshot write failed,
	// which has no WAL record to replay — and rewrites the log cleanly.
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		if err := s.Compact(); err != nil {
			s.logf("post-recovery compaction: %v", err)
		}
	}()
	return true
}

// appendLocked runs one WAL append under s.mu with the store's fault policy:
// transient errors retry in place with a short backoff; an error that
// survives the retries is persistent and degrades the store.
func (s *Store) appendLocked(payload []byte, what string) error {
	var err error
	for attempt := 0; attempt <= transientRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(transientBackoff << (attempt - 1))
		}
		// A failed append never advances the writer, so a retry overwrites
		// whatever torn prefix the previous attempt left.
		if err = s.w.Append(payload); err == nil {
			return nil
		}
		if !isTransientIOErr(err) {
			break
		}
	}
	return s.degrade(fmt.Errorf("%s: %w", what, err))
}

// logBatch implements engineJournal: append-before-apply under the engine's
// writer lock.
func (s *Store) logBatch(epoch uint64, impls []Implementation) error {
	if err := s.Err(); err != nil {
		return err
	}
	payload := encodeBatch(epoch, impls)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload, fmt.Sprintf("appending %d implementations at epoch %d", len(impls), epoch)); err != nil {
		return err
	}
	s.walEpoch = epoch
	s.maybeCompactLocked()
	return nil
}

// maybeCompactLocked kicks a background compaction once the WAL grows
// compactAt bytes past its floor. The floor is the size right after the last
// reset — compaction carries every user record forward, so measuring growth
// from zero would re-trigger immediately on a user-heavy log.
func (s *Store) maybeCompactLocked() {
	if s.w.Size() >= s.walFloor+s.opts.compactAt() && s.compacting.CompareAndSwap(false, true) {
		s.compactWG.Add(1)
		go func() {
			defer s.compactWG.Done()
			s.compact()
		}()
	}
}

// logUserAppend implements userJournal: append-before-apply under the user's
// lock, exactly like ingest batches under the engine's writer lock.
func (s *Store) logUserAppend(id string, names []string) error {
	return s.logUserRecord(encodeUserAppend(id, names))
}

// logUserDelete implements userJournal.
func (s *Store) logUserDelete(id string) error {
	return s.logUserRecord(encodeUserDelete(id))
}

func (s *Store) logUserRecord(payload []byte) error {
	if err := s.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload, "appending user record"); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// logSwap implements engineJournal: a swap makes the whole log stale, so the
// new epoch is persisted as a snapshot right away. A swap has no WAL record,
// so a failed snapshot write degrades the store — the post-recovery
// compaction then persists the swapped state.
func (s *Store) logSwap(lib *Library) {
	if err := s.snapshotAndReset(lib); err != nil {
		s.logf("persisting swapped epoch %d failed: %v", lib.Epoch(), err)
		_ = s.degrade(fmt.Errorf("persisting swapped epoch %d: %w", lib.Epoch(), err))
	}
}

// Compact synchronously persists the engine's current epoch as a snapshot
// and drops the WAL records it covers. Periodic compaction runs this in the
// background once the WAL outgrows its threshold; tests and shutdown hooks
// may call it directly.
func (s *Store) Compact() error {
	return s.snapshotAndReset(s.engine.Snapshot())
}

func (s *Store) compact() {
	defer s.compacting.Store(false)
	lib := s.engine.Snapshot()
	if err := s.snapshotAndReset(lib); err != nil {
		// Compaction failure is not fatal: the WAL still holds everything.
		s.logf("compaction at epoch %d failed: %v", lib.Epoch(), err)
		return
	}
	s.logf("compacted WAL into snapshot at epoch %d", lib.Epoch())
}

// diffBase picks the full snapshot a delta at epoch would reference: the
// newest full generation older than epoch, provided fewer than MaxDiffChain
// deltas already ride on it. ok is false when a full snapshot should be
// written instead.
func (s *Store) diffBase(epoch uint64) (uint64, bool) {
	arts, err := snapshotArtifacts(s.fs, s.dir)
	if err != nil {
		return 0, false
	}
	var base uint64
	haveBase := false
	chain := 0
	for _, a := range arts {
		if a.epoch >= epoch {
			continue
		}
		if a.delta {
			if haveBase && a.epoch > base {
				chain++
			}
		} else {
			base, haveBase = a.epoch, true
			chain = 0
		}
	}
	if !haveBase || chain >= s.opts.maxChain() {
		return 0, false
	}
	return base, true
}

// writeDeltaSnapshot writes lib as a delta artifact referencing the full
// snapshot at baseEpoch. Any failure is reported to the caller, which falls
// back to writing a full snapshot.
func (s *Store) writeDeltaSnapshot(lib *Library, baseEpoch uint64) error {
	baseBytes, err := readSnapshotFile(s.fs, s.snapPath(baseEpoch))
	if err != nil {
		return err
	}
	base, err := core.NewSnapshotBase(baseBytes)
	if err != nil {
		return err
	}
	if base.Epoch() != baseEpoch {
		return fmt.Errorf("base %s holds epoch %d, not %d", filepath.Base(s.snapPath(baseEpoch)), base.Epoch(), baseEpoch)
	}
	return core.WriteSnapshotDiffFileFS(s.fs, s.deltaPath(lib.Epoch()), lib.lib, lib.vocab, core.SnapshotOptions{CompressPostings: s.opts.CompressPostings}, base)
}

// snapshotAndReset writes lib as a snapshot file, then truncates the WAL
// back to the records the retained snapshots cannot cover. Batches are kept
// all the way back to the oldest snapshot generation that survives pruning —
// not just past the new snapshot's epoch — so if a scrub later quarantines
// the newest snapshot, recovery falls back a generation and replays the
// longer tail to the exact same state. User records are always carried:
// snapshots hold only the library.
func (s *Store) snapshotAndReset(lib *Library) error {
	epoch := lib.Epoch()
	if epoch == 0 {
		// Nothing has ever been published. An epoch-0 snapshot is worse than
		// none: adopting one on restart would stamp the lineage at epoch 1
		// (Swap publishes, and epochs never move backwards), silently
		// desynchronizing the epoch from the number of ingested batches.
		return nil
	}
	// The expensive write happens outside s.mu so ingests keep flowing; the
	// file renames into place atomically. With SnapshotDiff on, the write is
	// an incremental delta against the newest full snapshot while the chain
	// stays short; every MaxDiffChain deltas — or whenever no usable base
	// exists, or the delta write fails — a full snapshot is written instead,
	// so a broken chain costs one full write, never durability.
	wroteDelta := false
	if s.opts.SnapshotDiff {
		if baseEpoch, ok := s.diffBase(epoch); ok {
			if err := s.writeDeltaSnapshot(lib, baseEpoch); err != nil {
				s.logf("delta snapshot at epoch %d over base %d: %v (writing full)", epoch, baseEpoch, err)
			} else {
				wroteDelta = true
			}
		}
	}
	if !wroteDelta {
		if err := core.WriteSnapshotFileFS(s.fs, s.snapPath(epoch), lib.lib, lib.vocab, core.SnapshotOptions{CompressPostings: s.opts.CompressPostings}); err != nil {
			return err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.snapLow {
		return nil // a newer snapshot already landed; keep its log
	}
	// The WAL retention floor: the oldest epoch the retained snapshot
	// generations can restore without the log. A delta only restores through
	// its full base, so it pins the floor at the base's epoch — if the delta
	// is later lost, recovery adopts the base and replays the longer tail.
	floor := epoch
	if arts, err := snapshotArtifacts(s.fs, s.dir); err == nil {
		kept := 0
		for i := len(arts) - 1; i >= 0; i-- {
			if arts[i].epoch > epoch {
				continue
			}
			kept++
			if kept > s.opts.keep() {
				break
			}
			cover := arts[i].epoch
			if arts[i].delta {
				if _, b, err := core.SnapshotDeltaInfo(s.fs, s.deltaPath(arts[i].epoch)); err == nil {
					cover = b
				} else {
					cover = 0 // unreadable chain link: keep the whole log
				}
			}
			if cover < floor {
				floor = cover
			}
		}
	}
	var tail [][]byte
	if _, err := wal.ReplayFS(s.fs, s.walPath(), func(payload []byte) error {
		if len(payload) == 0 {
			return nil
		}
		switch payload[0] {
		case walKindBatch:
			if e, _, err := decodeBatch(payload); err == nil && e > floor {
				tail = append(tail, append([]byte(nil), payload...))
			}
		case walKindUserAppend, walKindUserDelete:
			tail = append(tail, append([]byte(nil), payload...))
		}
		return nil
	}); err != nil {
		return err
	}
	// Rotate the log through a sidecar: the successor is built in full as
	// ingest.wal.next and renamed over the live log only once it is sealed.
	// A fault — or a crash — anywhere while carrying the tail leaves the old
	// log untouched, so a failed compaction never costs an acked record.
	next := s.walPath() + ".next"
	nw, err := wal.OpenWriterFS(s.fs, next, 0, s.opts.SyncWAL)
	if err != nil {
		return err
	}
	for _, payload := range tail {
		if err := nw.Append(payload); err != nil {
			_ = nw.Close()
			_ = s.fs.Remove(next)
			return fmt.Errorf("carrying WAL tail past epoch %d: %w", floor, err)
		}
	}
	if err := nw.Close(); err != nil {
		_ = s.fs.Remove(next)
		return err
	}
	nwSize := nw.Size()
	// Commit point. The old log's sync state no longer matters — every record
	// that must survive is sealed in the successor — so its close error is
	// logged, not fatal.
	if err := s.w.Close(); err != nil {
		s.logf("closing WAL before rotation: %v", err)
	}
	if err := s.fs.Rename(next, s.walPath()); err != nil {
		_ = s.fs.Remove(next)
		// The old log is still in place; reattach to it or degrade.
		ow, oerr := wal.OpenWriterFS(s.fs, s.walPath(), s.w.Size(), s.opts.SyncWAL)
		if oerr != nil {
			return s.degrade(fmt.Errorf("reopening WAL after failed rotation: %w", oerr))
		}
		s.w = ow
		return err
	}
	w, err := wal.OpenWriterFS(s.fs, s.walPath(), nwSize, s.opts.SyncWAL)
	if err != nil {
		// The rotated log is sealed on disk but unappendable — recovery will
		// reopen it; until then no new write may be acked.
		return s.degrade(fmt.Errorf("reopening rotated WAL: %w", err))
	}
	s.w = w
	if err := s.fs.SyncDir(s.dir); err != nil {
		s.logf("syncing %s after WAL rotation: %v", s.dir, err)
	}
	s.walFloor = w.Size()
	s.snapLow = epoch
	s.pruneSnapshotsLocked(epoch)
	return nil
}

// pruneSnapshotsLocked deletes snapshot generations beyond KeepSnapshots,
// never touching the newest. A failed prune is counted, not fatal: the file
// still lists, so the next compaction retries it.
func (s *Store) pruneSnapshotsLocked(newest uint64) {
	arts, err := snapshotArtifacts(s.fs, s.dir)
	if err != nil {
		s.pruneFailures.Add(1)
		s.logf("listing snapshots for pruning: %v", err)
		return
	}
	keep := s.opts.keep()
	kept := 0
	// Full bases of retained deltas outlive the keep window: a delta without
	// its base is unrestorable. Bases are always older than their deltas, so
	// one descending pass sees every retained delta before its base.
	needed := map[uint64]bool{}
	for i := len(arts) - 1; i >= 0; i-- {
		a := arts[i]
		if a.epoch > newest {
			continue // a concurrent newer snapshot: not ours to manage
		}
		kept++
		if kept <= keep {
			if a.delta {
				if _, b, err := core.SnapshotDeltaInfo(s.fs, s.deltaPath(a.epoch)); err == nil {
					needed[b] = true
				} else {
					s.logf("reading delta epoch %d header while pruning: %v", a.epoch, err)
				}
			}
			continue
		}
		if !a.delta && needed[a.epoch] {
			continue
		}
		if err := s.fs.Remove(s.artifactPath(a)); err != nil {
			s.pruneFailures.Add(1)
			s.logf("pruning snapshot epoch %d: %v", a.epoch, err)
		}
	}
}

// scrubLoop runs the periodic scrubber until the store closes.
func (s *Store) scrubLoop() {
	defer s.bgWG.Done()
	t := time.NewTicker(s.opts.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
		}
		if err := s.Scrub(); err != nil {
			s.logf("scrub: %v", err)
		}
	}
}

// Scrub re-verifies every snapshot's whole-file checksum and the WAL's frame
// CRCs, now, synchronously. Corrupt snapshots are quarantined (renamed to
// *.quarantine, preserving the evidence) and a compaction is kicked to
// restore full snapshot coverage; a WAL that no longer replays to its acked
// size is counted as torn and likewise compacted away, rewriting the log
// from live state. It returns the first corruption found, nil for a clean
// pass. OpenStore runs the snapshot half of this automatically; the periodic
// loop behind StoreOptions.ScrubInterval runs all of it.
func (s *Store) Scrub() error {
	var firstErr error
	arts, err := snapshotArtifacts(s.fs, s.dir)
	if err != nil {
		return err
	}
	quarantined := false
	for _, a := range arts {
		path := s.artifactPath(a)
		if err := core.ScrubSnapshotFile(s.fs, path); err != nil {
			s.scrubFails.Add(1)
			// Only proven corruption moves the file aside; an I/O error while
			// reading is reported but leaves the (possibly healthy) snapshot
			// where it is for the next pass.
			if errors.Is(err, core.ErrCorruptSnapshot) {
				s.quarantine(path, err)
				quarantined = true
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot %s: %w", filepath.Base(path), err)
			}
		}
	}
	// The WAL scrub holds s.mu so no append moves the acked size under the
	// replay; every intact frame re-verifies its CRC on the way through.
	s.mu.Lock()
	acked := s.w.Size()
	size, werr := wal.ReplayFS(s.fs, s.walPath(), func([]byte) error { return nil })
	s.mu.Unlock()
	if werr == nil && size < acked {
		werr = fmt.Errorf("goalrec: WAL replays to %d of %d acked bytes (mid-log corruption)", size, acked)
		s.walTears.Add(1)
	}
	if werr != nil {
		s.scrubFails.Add(1)
		if firstErr == nil {
			firstErr = werr
		}
	}
	if quarantined || werr != nil {
		// Restore coverage: a fresh snapshot of the live epoch and a clean
		// log rewrite. Best effort — a degraded disk fails it, and the next
		// scrub or recovery retries.
		if cerr := s.Compact(); cerr != nil {
			s.logf("post-scrub compaction: %v", cerr)
		}
	}
	if firstErr == nil {
		s.scrubPasses.Add(1)
	}
	return firstErr
}

// Close detaches the store from its engine, syncs and closes the WAL, and
// releases every snapshot mapping opened during the store's lifetime. The
// engine remains usable afterwards but is no longer durable. Close only
// after readers can no longer reach mapped snapshots.
func (s *Store) Close() error {
	s.engine.setJournal(nil)
	s.closeOnce.Do(func() { close(s.closed) })
	s.bgWG.Wait()
	s.compactWG.Wait()
	s.mu.Lock()
	err := s.w.Close()
	s.mu.Unlock()
	s.closeMaps()
	return err
}

func (s *Store) closeMaps() {
	s.unmapMu.Lock()
	defer s.unmapMu.Unlock()
	for _, f := range s.unmaps {
		_ = f()
	}
	s.unmaps = nil
}

// ---------------------------------------------------------------------------
// WAL payload codec
// ---------------------------------------------------------------------------

// Batch payloads are name-level, not id-level: replay re-interns names in
// log order, reproducing the exact id assignment of the original ingests.
//
//	kind (1 byte, 1 = batch) | uvarint epoch | uvarint nImpls |
//	  per impl: uvarint len(goal) | goal | uvarint nActions |
//	    per action: uvarint len(name) | name

// User records ride the same log:
//
//	kind (1 byte, 2 = user-append) | uvarint len(id) | id |
//	  uvarint nNames | per name: uvarint len(name) | name
//	kind (1 byte, 3 = user-delete) | uvarint len(id) | id
//
// Appends carry the post-dedup suffix, so replaying them through
// User.AppendNames reproduces the history bit-identically; deletes must stay
// ordered after the appends they erase, which log order guarantees.
const (
	walKindBatch      = 1
	walKindUserAppend = 2
	walKindUserDelete = 3
)

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendString(dst []byte, v string) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

func encodeBatch(epoch uint64, impls []Implementation) []byte {
	out := []byte{walKindBatch}
	out = appendUvarint(out, epoch)
	out = appendUvarint(out, uint64(len(impls)))
	for _, impl := range impls {
		out = appendString(out, impl.Goal)
		out = appendUvarint(out, uint64(len(impl.Actions)))
		for _, a := range impl.Actions {
			out = appendString(out, a)
		}
	}
	return out
}

type batchDecoder struct{ b []byte }

func (d *batchDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *batchDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)) {
		return "", fmt.Errorf("string of %d bytes overruns record", n)
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v, nil
}

func decodeBatch(payload []byte) (uint64, []Implementation, error) {
	if len(payload) == 0 || payload[0] != walKindBatch {
		return 0, nil, fmt.Errorf("unknown record kind")
	}
	d := &batchDecoder{b: payload[1:]}
	epoch, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(d.b)) { // every impl takes ≥ 1 byte
		return 0, nil, fmt.Errorf("implausible batch size %d", n)
	}
	impls := make([]Implementation, 0, n)
	for i := uint64(0); i < n; i++ {
		var impl Implementation
		if impl.Goal, err = d.str(); err != nil {
			return 0, nil, err
		}
		na, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if na > uint64(len(d.b)) {
			return 0, nil, fmt.Errorf("implausible action count %d", na)
		}
		impl.Actions = make([]string, 0, na)
		for j := uint64(0); j < na; j++ {
			a, err := d.str()
			if err != nil {
				return 0, nil, err
			}
			impl.Actions = append(impl.Actions, a)
		}
		impls = append(impls, impl)
	}
	return epoch, impls, nil
}

func encodeUserAppend(id string, names []string) []byte {
	out := []byte{walKindUserAppend}
	out = appendString(out, id)
	out = appendUvarint(out, uint64(len(names)))
	for _, n := range names {
		out = appendString(out, n)
	}
	return out
}

func decodeUserAppend(payload []byte) (string, []string, error) {
	if len(payload) == 0 || payload[0] != walKindUserAppend {
		return "", nil, fmt.Errorf("not a user-append record")
	}
	d := &batchDecoder{b: payload[1:]}
	id, err := d.str()
	if err != nil {
		return "", nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(d.b)) { // every name takes ≥ 1 byte
		return "", nil, fmt.Errorf("implausible name count %d", n)
	}
	names := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.str()
		if err != nil {
			return "", nil, err
		}
		names = append(names, name)
	}
	return id, names, nil
}

func encodeUserDelete(id string) []byte {
	return appendString([]byte{walKindUserDelete}, id)
}

func decodeUserDelete(payload []byte) (string, error) {
	if len(payload) == 0 || payload[0] != walKindUserDelete {
		return "", fmt.Errorf("not a user-delete record")
	}
	d := &batchDecoder{b: payload[1:]}
	return d.str()
}
