package goalrec

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"goalrec/internal/core"
	"goalrec/internal/wal"
)

// Store gives an Engine a durable home directory: memory-mapped snapshots
// for instant cold starts plus a write-ahead log for everything ingested
// since the last snapshot.
//
//	store, err := goalrec.OpenStore(dir, goalrec.StoreOptions{})
//	...
//	engine := store.Engine()
//
// The directory holds snap-<epoch>.gsnp files (the core snapshot format,
// opened zero-copy via mmap) and one ingest.wal. Opening a store maps the
// newest loadable snapshot, replays the WAL records its epoch does not cover
// — reproducing id assignment by interning names in log order — truncates
// any torn tail, and resumes the lineage at the exact epoch the previous
// process last published.
//
// From then on the store rides the engine's write path: every ingest batch
// is appended (length-prefixed, checksummed) to the WAL before it is
// applied, so a crash between append and publish replays the batch on
// restart instead of losing it. A failed append rejects the ingest with
// ErrJournal and latches the store into a failed state — no acknowledged
// write is ever absent from the log. Once the WAL outgrows
// CompactAtWALBytes, a background compaction writes the current epoch as a
// fresh snapshot and drops the log records it covers; Engine.Swap snapshots
// immediately, since a swap supersedes the whole log.
type Store struct {
	dir    string
	opts   StoreOptions
	engine *Engine
	users  *UserStore

	mu       sync.Mutex // serializes WAL appends and rotation
	w        *wal.Writer
	walEpoch uint64 // highest epoch appended to the WAL
	snapLow  uint64 // epoch covered by the newest snapshot on disk
	walFloor int64  // WAL size right after the last reset (carried user records)

	failed     atomic.Pointer[error] // sticky first journal failure
	compacting atomic.Bool
	compactWG  sync.WaitGroup

	// unmaps releases the snapshot mappings opened over the store's
	// lifetime. Mappings stay live until Close: engine snapshots handed to
	// readers may reference them indefinitely.
	unmapMu sync.Mutex
	unmaps  []func() error
}

// StoreOptions configures OpenStore. The zero value is production-ready.
type StoreOptions struct {
	// SyncWAL fsyncs every WAL append (durability against power loss). Off,
	// appends reach the page cache synchronously and disk asynchronously —
	// durable against process crashes, the common failure.
	SyncWAL bool
	// CompactAtWALBytes is the WAL size that triggers background compaction
	// (snapshot + log reset). <= 0 selects 4 MiB.
	CompactAtWALBytes int64
	// CompressPostings selects block-compressed posting lists for written
	// snapshots. Loads stay zero-copy either way; compression trades a
	// lazy per-block decode on scans for a smaller file and page-in set.
	CompressPostings bool
	// KeepSnapshots is how many generations of snapshot files to retain
	// (the newest is always kept). <= 0 selects 2.
	KeepSnapshots int
	// Logger receives compaction and recovery notes; nil disables logging.
	Logger *log.Logger
	// Users configures the per-user activity store the Store journals and
	// recovers alongside the library (capacities; zero values are defaults).
	Users UserStoreOptions
}

const defaultCompactAtWALBytes = 4 << 20

func (o StoreOptions) compactAt() int64 {
	if o.CompactAtWALBytes <= 0 {
		return defaultCompactAtWALBytes
	}
	return o.CompactAtWALBytes
}

func (o StoreOptions) keep() int {
	if o.KeepSnapshots <= 0 {
		return 2
	}
	return o.KeepSnapshots
}

func (s *Store) logf(format string, args ...interface{}) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: "+format, args...)
	}
}

func (s *Store) walPath() string { return filepath.Join(s.dir, "ingest.wal") }

func (s *Store) snapPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%016d.gsnp", epoch))
}

// snapshotEpochs lists the epochs of the snapshot files present in dir,
// ascending.
func snapshotEpochs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		var epoch uint64
		if n, err := fmt.Sscanf(ent.Name(), "snap-%d.gsnp", &epoch); n == 1 && err == nil {
			out = append(out, epoch)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// OpenStore opens (creating if needed) the persistent store at dir and
// recovers its engine: newest loadable snapshot mmap-first, then the WAL
// tail on top. The returned store owns the snapshot mappings and the WAL
// handle; Close it after the engine is no longer serving.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}

	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return nil, err
	}
	// Newest loadable snapshot wins; unreadable ones (torn writes are
	// impossible — snapshots rename into place — but disks rot) fall back a
	// generation rather than failing the store.
	for i := len(epochs) - 1; i >= 0; i-- {
		path := s.snapPath(epochs[i])
		snap, err := core.OpenSnapshot(path)
		if err != nil {
			s.logf("snapshot %s unloadable: %v (falling back)", path, err)
			continue
		}
		vocab := snap.Vocabulary()
		if vocab == nil {
			snap.Close()
			s.logf("snapshot %s has no vocabulary (falling back)", path)
			continue
		}
		s.engine = newEngineAdopting(&Library{lib: snap.Library(), vocab: vocab})
		s.snapLow = snap.Library().Epoch()
		s.unmaps = append(s.unmaps, snap.Close)
		break
	}
	if s.engine == nil {
		s.engine = NewEngine()
	}
	s.users = NewUserStore(s.engine, opts.Users)

	// Replay the WAL tail. Ingest batches apply only beyond the adopted
	// snapshot's epoch; user records always apply (snapshots never cover user
	// state) and replay in log order, so restart reproduces every history
	// bit-identically — including append/delete interleavings.
	base := s.engine.Epoch()
	replayed := 0
	validSize, err := wal.Replay(s.walPath(), func(payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("goalrec: empty WAL record after epoch %d", s.engine.Epoch())
		}
		switch payload[0] {
		case walKindBatch:
			epoch, impls, err := decodeBatch(payload)
			if err != nil {
				return fmt.Errorf("goalrec: WAL record after epoch %d: %w", s.engine.Epoch(), err)
			}
			s.walEpoch = epoch
			if epoch <= base {
				return nil // already covered by the snapshot
			}
			if _, err := s.engine.AddImplementations(impls); err != nil {
				return fmt.Errorf("goalrec: replaying WAL batch at epoch %d: %w", epoch, err)
			}
			return s.engine.restoreEpoch(epoch)
		case walKindUserAppend:
			id, names, err := decodeUserAppend(payload)
			if err != nil {
				return fmt.Errorf("goalrec: WAL user-append record: %w", err)
			}
			if err := s.users.applyReplayAppend(id, names); err != nil {
				// Capacity may have been lowered since the record was written;
				// dropping the user beats refusing to open the store.
				s.logf("replaying user-append for %q: %v (skipped)", id, err)
			}
			return nil
		case walKindUserDelete:
			id, err := decodeUserDelete(payload)
			if err != nil {
				return fmt.Errorf("goalrec: WAL user-delete record: %w", err)
			}
			s.users.applyReplayDelete(id)
			return nil
		default:
			return fmt.Errorf("goalrec: unknown WAL record kind %d", payload[0])
		}
	})
	if err != nil {
		s.closeMaps()
		return nil, err
	}
	if e := s.engine.Epoch(); e > base {
		replayed = int(e - base)
	}
	if replayed > 0 {
		s.logf("replayed %d WAL batches on top of epoch %d, resuming at epoch %d", replayed, base, s.engine.Epoch())
	}

	w, err := wal.OpenWriter(s.walPath(), validSize, opts.SyncWAL)
	if err != nil {
		s.closeMaps()
		return nil, err
	}
	s.w = w
	s.engine.setJournal(s)
	s.users.setJournal(s)
	return s, nil
}

// Engine returns the recovered engine. Its ingests and swaps are journaled
// by this store for as long as the store stays open.
func (s *Store) Engine() *Engine { return s.engine }

// Users returns the WAL-backed per-user activity store recovered alongside
// the engine. Appends and deletes are journaled for as long as the store
// stays open; restart replays them so histories come back bit-identically.
func (s *Store) Users() *UserStore { return s.users }

// Err returns the sticky journal failure, or nil while the store is healthy.
func (s *Store) Err() error {
	if p := s.failed.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Store) fail(err error) error {
	e := err
	s.failed.CompareAndSwap(nil, &e)
	return s.Err()
}

// logBatch implements engineJournal: append-before-apply under the engine's
// writer lock.
func (s *Store) logBatch(epoch uint64, impls []Implementation) error {
	if err := s.Err(); err != nil {
		return err
	}
	payload := encodeBatch(epoch, impls)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Append(payload); err != nil {
		return s.fail(fmt.Errorf("appending %d implementations at epoch %d: %w", len(impls), epoch, err))
	}
	s.walEpoch = epoch
	s.maybeCompactLocked()
	return nil
}

// maybeCompactLocked kicks a background compaction once the WAL grows
// compactAt bytes past its floor. The floor is the size right after the last
// reset — compaction carries every user record forward, so measuring growth
// from zero would re-trigger immediately on a user-heavy log.
func (s *Store) maybeCompactLocked() {
	if s.w.Size() >= s.walFloor+s.opts.compactAt() && s.compacting.CompareAndSwap(false, true) {
		s.compactWG.Add(1)
		go func() {
			defer s.compactWG.Done()
			s.compact()
		}()
	}
}

// logUserAppend implements userJournal: append-before-apply under the user's
// lock, exactly like ingest batches under the engine's writer lock.
func (s *Store) logUserAppend(id string, names []string) error {
	return s.logUserRecord(encodeUserAppend(id, names))
}

// logUserDelete implements userJournal.
func (s *Store) logUserDelete(id string) error {
	return s.logUserRecord(encodeUserDelete(id))
}

func (s *Store) logUserRecord(payload []byte) error {
	if err := s.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Append(payload); err != nil {
		return s.fail(fmt.Errorf("appending user record: %w", err))
	}
	s.maybeCompactLocked()
	return nil
}

// logSwap implements engineJournal: a swap makes the whole log stale, so the
// new epoch is persisted as a snapshot right away.
func (s *Store) logSwap(lib *Library) {
	if err := s.snapshotAndReset(lib); err != nil {
		s.logf("persisting swapped epoch %d failed: %v", lib.Epoch(), err)
		_ = s.fail(fmt.Errorf("persisting swapped epoch %d: %w", lib.Epoch(), err))
	}
}

// Compact synchronously persists the engine's current epoch as a snapshot
// and drops the WAL records it covers. Periodic compaction runs this in the
// background once the WAL outgrows its threshold; tests and shutdown hooks
// may call it directly.
func (s *Store) Compact() error {
	return s.snapshotAndReset(s.engine.Snapshot())
}

func (s *Store) compact() {
	defer s.compacting.Store(false)
	lib := s.engine.Snapshot()
	if err := s.snapshotAndReset(lib); err != nil {
		// Compaction failure is not fatal: the WAL still holds everything.
		s.logf("compaction at epoch %d failed: %v", lib.Epoch(), err)
		return
	}
	s.logf("compacted WAL into snapshot at epoch %d", lib.Epoch())
}

// snapshotAndReset writes lib as a snapshot file, then truncates the WAL
// back to just the records the snapshot does not cover (usually none; a
// concurrent ingest may have appended past lib's epoch, and those records
// are preserved by re-appending them to the fresh log).
func (s *Store) snapshotAndReset(lib *Library) error {
	epoch := lib.Epoch()
	path := s.snapPath(epoch)
	// The expensive write happens outside s.mu so ingests keep flowing; the
	// file renames into place atomically.
	if err := core.WriteSnapshotFile(path, lib.lib, lib.vocab, core.SnapshotOptions{CompressPostings: s.opts.CompressPostings}); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.snapLow {
		return nil // a newer snapshot already landed; keep its log
	}
	// Carry forward what the snapshot does not cover: ingest batches beyond
	// its epoch, and every user record — snapshots hold only the library, so
	// user appends/deletes stay in the log (in order) until they are replayed
	// by the next open.
	var tail [][]byte
	if _, err := wal.Replay(s.walPath(), func(payload []byte) error {
		if len(payload) == 0 {
			return nil
		}
		switch payload[0] {
		case walKindBatch:
			if e, _, err := decodeBatch(payload); err == nil && e > epoch {
				tail = append(tail, append([]byte(nil), payload...))
			}
		case walKindUserAppend, walKindUserDelete:
			tail = append(tail, append([]byte(nil), payload...))
		}
		return nil
	}); err != nil {
		return err
	}
	if err := s.w.Close(); err != nil {
		return err
	}
	w, err := wal.OpenWriter(s.walPath(), 0, s.opts.SyncWAL) // 0: rewrite from scratch
	if err != nil {
		return err
	}
	for _, payload := range tail {
		if err := w.Append(payload); err != nil {
			s.w = w
			return s.fail(fmt.Errorf("carrying WAL tail past epoch %d: %w", epoch, err))
		}
	}
	s.w = w
	s.walFloor = w.Size()
	s.snapLow = epoch
	s.pruneSnapshotsLocked(epoch)
	return nil
}

// pruneSnapshotsLocked deletes snapshot generations beyond KeepSnapshots,
// never touching the newest.
func (s *Store) pruneSnapshotsLocked(newest uint64) {
	epochs, err := snapshotEpochs(s.dir)
	if err != nil {
		return
	}
	keep := s.opts.keep()
	kept := 0
	for i := len(epochs) - 1; i >= 0; i-- {
		if epochs[i] > newest {
			continue // a concurrent newer snapshot: not ours to manage
		}
		kept++
		if kept > keep {
			_ = os.Remove(s.snapPath(epochs[i]))
		}
	}
}

// Close detaches the store from its engine, syncs and closes the WAL, and
// releases every snapshot mapping opened during the store's lifetime. The
// engine remains usable afterwards but is no longer durable. Close only
// after readers can no longer reach mapped snapshots.
func (s *Store) Close() error {
	s.engine.setJournal(nil)
	s.compactWG.Wait()
	s.mu.Lock()
	err := s.w.Close()
	s.mu.Unlock()
	s.closeMaps()
	return err
}

func (s *Store) closeMaps() {
	s.unmapMu.Lock()
	defer s.unmapMu.Unlock()
	for _, f := range s.unmaps {
		_ = f()
	}
	s.unmaps = nil
}

// ---------------------------------------------------------------------------
// WAL payload codec
// ---------------------------------------------------------------------------

// Batch payloads are name-level, not id-level: replay re-interns names in
// log order, reproducing the exact id assignment of the original ingests.
//
//	kind (1 byte, 1 = batch) | uvarint epoch | uvarint nImpls |
//	  per impl: uvarint len(goal) | goal | uvarint nActions |
//	    per action: uvarint len(name) | name

// User records ride the same log:
//
//	kind (1 byte, 2 = user-append) | uvarint len(id) | id |
//	  uvarint nNames | per name: uvarint len(name) | name
//	kind (1 byte, 3 = user-delete) | uvarint len(id) | id
//
// Appends carry the post-dedup suffix, so replaying them through
// User.AppendNames reproduces the history bit-identically; deletes must stay
// ordered after the appends they erase, which log order guarantees.
const (
	walKindBatch      = 1
	walKindUserAppend = 2
	walKindUserDelete = 3
)

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendString(dst []byte, v string) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

func encodeBatch(epoch uint64, impls []Implementation) []byte {
	out := []byte{walKindBatch}
	out = appendUvarint(out, epoch)
	out = appendUvarint(out, uint64(len(impls)))
	for _, impl := range impls {
		out = appendString(out, impl.Goal)
		out = appendUvarint(out, uint64(len(impl.Actions)))
		for _, a := range impl.Actions {
			out = appendString(out, a)
		}
	}
	return out
}

type batchDecoder struct{ b []byte }

func (d *batchDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *batchDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)) {
		return "", fmt.Errorf("string of %d bytes overruns record", n)
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v, nil
}

func decodeBatch(payload []byte) (uint64, []Implementation, error) {
	if len(payload) == 0 || payload[0] != walKindBatch {
		return 0, nil, fmt.Errorf("unknown record kind")
	}
	d := &batchDecoder{b: payload[1:]}
	epoch, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(d.b)) { // every impl takes ≥ 1 byte
		return 0, nil, fmt.Errorf("implausible batch size %d", n)
	}
	impls := make([]Implementation, 0, n)
	for i := uint64(0); i < n; i++ {
		var impl Implementation
		if impl.Goal, err = d.str(); err != nil {
			return 0, nil, err
		}
		na, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if na > uint64(len(d.b)) {
			return 0, nil, fmt.Errorf("implausible action count %d", na)
		}
		impl.Actions = make([]string, 0, na)
		for j := uint64(0); j < na; j++ {
			a, err := d.str()
			if err != nil {
				return 0, nil, err
			}
			impl.Actions = append(impl.Actions, a)
		}
		impls = append(impls, impl)
	}
	return epoch, impls, nil
}

func encodeUserAppend(id string, names []string) []byte {
	out := []byte{walKindUserAppend}
	out = appendString(out, id)
	out = appendUvarint(out, uint64(len(names)))
	for _, n := range names {
		out = appendString(out, n)
	}
	return out
}

func decodeUserAppend(payload []byte) (string, []string, error) {
	if len(payload) == 0 || payload[0] != walKindUserAppend {
		return "", nil, fmt.Errorf("not a user-append record")
	}
	d := &batchDecoder{b: payload[1:]}
	id, err := d.str()
	if err != nil {
		return "", nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(d.b)) { // every name takes ≥ 1 byte
		return "", nil, fmt.Errorf("implausible name count %d", n)
	}
	names := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.str()
		if err != nil {
			return "", nil, err
		}
		names = append(names, name)
	}
	return id, names, nil
}

func encodeUserDelete(id string) []byte {
	return appendString([]byte{walKindUserDelete}, id)
}

func decodeUserDelete(payload []byte) (string, error) {
	if len(payload) == 0 || payload[0] != walKindUserDelete {
		return "", fmt.Errorf("not a user-delete record")
	}
	d := &batchDecoder{b: payload[1:]}
	return d.str()
}
