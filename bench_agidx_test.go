// Micro-benchmarks for the AG-idx change (PR 1): the old derivations of the
// goal space and profile counts, reconstructed inline through the public
// postings API, against the new AG-idx-backed methods — at several
// connectivity levels. See also internal/strategy/bench_test.go for the
// Best Match scoring-path comparison and BENCH_PR1.json for the end-to-end
// Figure 7 numbers (`make bench`).
package goalrec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

func agBenchLibrary(size, actions int, seed int64) *core.Library {
	r := rand.New(rand.NewSource(seed))
	b := core.NewBuilder(size, 8)
	for i := 0; i < size; i++ {
		n := 2 + r.Intn(12)
		acts := make([]core.ActionID, n)
		for j := range acts {
			acts[j] = core.ActionID(r.Intn(actions))
		}
		if _, err := b.Add(core.GoalID(i/2), acts); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func agBenchQueries(actions, n, length int, seed int64) [][]core.ActionID {
	r := rand.New(rand.NewSource(seed))
	qs := make([][]core.ActionID, n)
	for i := range qs {
		q := make([]core.ActionID, length)
		for j := range q {
			q[j] = core.ActionID(r.Intn(actions))
		}
		qs[i] = q
	}
	return qs
}

var agBenchCells = []struct {
	name    string
	actions int
}{
	{"conn-low", 8000},
	{"conn-mid", 2000},
	{"conn-high", 500},
}

// legacyGoalSpace is the pre-AG derivation: materialize IS(H), then collect
// and deduplicate the goal of every implementation in it.
func legacyGoalSpace(lib *core.Library, h []core.ActionID) []core.GoalID {
	space := lib.ImplementationSpace(h)
	if len(space) == 0 {
		return nil
	}
	out := make([]core.GoalID, 0, len(space))
	for _, p := range space {
		out = append(out, lib.Goal(p))
	}
	return intset.FromUnsorted(out)
}

// BenchmarkGoalSpace compares the old IS-materializing goal space with the
// new AG-idx union across connectivity levels.
func BenchmarkGoalSpace(b *testing.B) {
	for _, cell := range agBenchCells {
		lib := agBenchLibrary(20000, cell.actions, 3)
		queries := agBenchQueries(cell.actions, 64, 5, 4)
		conn := lib.Stats().Connectivity
		b.Run(fmt.Sprintf("%s/conn=%.0f/postings-old", cell.name, conn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				legacyGoalSpace(lib, queries[i%len(queries)])
			}
		})
		b.Run(fmt.Sprintf("%s/conn=%.0f/ag-new", cell.name, conn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lib.GoalSpace(queries[i%len(queries)])
			}
		})
	}
}

// legacyActionGoalCount is the pre-AG derivation Explain/TopGoals used: walk
// the action's full posting list counting implementations of the goal.
func legacyActionGoalCount(lib *core.Library, a core.ActionID, g core.GoalID) int {
	n := 0
	for _, p := range lib.ImplsOfAction(a) {
		if lib.Goal(p) == g {
			n++
		}
	}
	return n
}

// BenchmarkActionGoalCount compares the posting-list walk with the AG-idx
// binary search backing Explain and TopGoals.
func BenchmarkActionGoalCount(b *testing.B) {
	lib := agBenchLibrary(20000, 500, 3)
	r := rand.New(rand.NewSource(5))
	pairs := make([][2]int32, 256)
	for i := range pairs {
		pairs[i] = [2]int32{int32(r.Intn(500)), int32(r.Intn(10000))}
	}
	b.Run("postings-old", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			legacyActionGoalCount(lib, core.ActionID(p[0]), core.GoalID(p[1]))
		}
	})
	b.Run("ag-new", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			lib.ActionGoalCount(core.ActionID(p[0]), core.GoalID(p[1]))
		}
	})
}
