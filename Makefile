# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench benchdiff microbench vet fmt lint errlint cover experiments soak cluster restart-replay torture clean BENCH_PR1.json BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json BENCH_PR9.json BENCH_PR10.json

all: vet test build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench: BENCH_PR10.json

# Figure 7 sweep at the README's reference configuration; the JSON feeds the
# README performance table. BENCH_PR1.json is the pre-kernel baseline the
# PR-4 acceptance ratios are measured against; BENCH_PR4.json is the
# counter-kernel scoring stack; BENCH_PR5.json is the same sweep and seed on
# the bound-driven pruned kernels over the impact-ordered layout.
BENCH_PR1.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-bench-json BENCH_PR1.json

BENCH_PR4.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-scaling-queries 200 \
		-bench-json BENCH_PR4.json

BENCH_PR5.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-scaling-queries 200 \
		-pruning -impact-ordering \
		-bench-json BENCH_PR5.json

# BENCH_PR6.json is the PR-5 sweep plus the cold-start cells (legacy
# decode+rebuild vs mmap snapshot open, as cold_start_ms).
BENCH_PR6.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-scaling-queries 200 \
		-pruning -impact-ordering -cold-start \
		-bench-json BENCH_PR6.json

# BENCH_PR7.json adds the user-append cells: append+recommend over a
# materialized per-user counter view (user-append/*) against the from-scratch
# scan the same history pays without one (user-scan/*).
BENCH_PR7.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-scaling-queries 200 \
		-pruning -impact-ordering -cold-start -user-append \
		-bench-json BENCH_PR7.json

# BENCH_PR8.json is the PR-7 sweep re-run on the fault-tolerant storage
# stack (injectable filesystem seam, whole-file snapshot checksums, sidecar
# WAL rotation): same cells, and the WAL-append and cold-start numbers must
# hold within the benchdiff gate.
BENCH_PR8.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-scaling-queries 200 \
		-pruning -impact-ordering -cold-start -user-append \
		-bench-json BENCH_PR8.json

# BENCH_PR9.json adds the paged-serving cells: Zipf-skewed posting-row scans
# raw vs block-compressed, cold vs served through the shared decoded-block
# cache (block-cache/*), with per-cell cache counters.
BENCH_PR9.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-scaling-queries 200 \
		-pruning -impact-ordering -cold-start -user-append -block-cache \
		-bench-json BENCH_PR9.json

# BENCH_PR10.json adds the sharded-serving cells (cluster/*): scatter-gather
# throughput of the same strategies on in-process shard clusters of 1, 2 and
# 4 workers, at the first sweep size.
BENCH_PR10.json:
	go run ./cmd/experiments -skip-datasets \
		-scaling-sizes 250000,1000000 -scaling-actions 10000 -seed 1 \
		-scaling-queries 200 \
		-pruning -impact-ordering -cold-start -user-append -block-cache \
		-cluster \
		-bench-json BENCH_PR10.json

# Per-cell latency deltas between the previous stack and the current one;
# exits non-zero on any >15% regression (the CI gate).
benchdiff:
	go run ./scripts/benchdiff BENCH_PR9.json BENCH_PR10.json

microbench:
	go test -run=XXX -bench=. -benchmem .

vet:
	go vet ./...

fmt:
	gofmt -w .

# Static checks: formatting, vet, and (when installed) govulncheck. CI runs
# the same three; install locally with
# `go install golang.org/x/vuln/cmd/govulncheck@latest`.
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	go vet ./...
	go run ./scripts/errlint
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; \
	fi

cover:
	go test ./... -coverprofile=cover.out && go tool cover -func=cover.out | tail -1

# Overload a race-instrumented goalrecd with loadgen for ~30s and require
# every response to be 200/503/504 plus a clean SIGTERM shutdown.
soak:
	./scripts/soak.sh

# Race-instrumented 3-worker scatter-gather cluster next to a single-node
# reference: bit-identical rankings, distributed loadgen, SIGKILL a worker
# (degraded serving + bit-identical resume after restart), and a cluster-wide
# two-phase snapshot swap under load.
cluster:
	./scripts/cluster.sh

# Ingest into a race-instrumented goalrecd with a durable store, SIGTERM it,
# restart on the same directory, and require the epoch and exact rankings to
# survive the WAL replay.
restart-replay:
	./scripts/restart_replay.sh

# Flag silently dropped Close/Sync/Remove/Rename errors in the persistence
# packages; `_ =` and defer are the only sanctioned discards.
errlint:
	go run ./scripts/errlint

# Crash-point torture: fail, then crash, every filesystem operation the
# store performs across an ingest/compact/restart workload and require
# recovery bit-identical to a replay of the acked writes (race-instrumented).
torture:
	./scripts/torture.sh

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	go run ./cmd/experiments -scale 0.3 -max-users 400

clean:
	rm -f cover.out test_output.txt bench_output.txt
