# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench vet fmt cover experiments clean

all: vet test build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core/ ./internal/strategy/ ./internal/server/ ./internal/baseline/

bench:
	go test -run=XXX -bench=. -benchmem .

vet:
	go vet ./...

fmt:
	gofmt -w .

cover:
	go test ./... -coverprofile=cover.out && go tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	go run ./cmd/experiments -scale 0.3 -max-users 400

clean:
	rm -f cover.out test_output.txt bench_output.txt
