package goalrec

import (
	"fmt"

	"goalrec/internal/baseline"
	"goalrec/internal/core"
	"goalrec/internal/hybrid"
)

// Corpus holds historical user activities (implicit feedback) expressed over
// a Library's action vocabulary, and fits the standard recommenders the
// paper compares against. A Corpus is immutable after construction.
type Corpus struct {
	lib *Library
	in  *baseline.Interactions
}

// NewCorpus builds a corpus from user activities. Action names unknown to
// the library are dropped (they cannot be recommended against the library
// anyway).
func (l *Library) NewCorpus(activities [][]string) *Corpus {
	idActs := make([][]core.ActionID, len(activities))
	for i, h := range activities {
		idActs[i] = l.resolve(h)
	}
	return &Corpus{lib: l, in: baseline.NewInteractions(idActs, l.lib.NumActions())}
}

// NumUsers returns the number of historical users.
func (c *Corpus) NumUsers() int { return c.in.NumUsers() }

// Popularity returns how many corpus users performed the action.
func (c *Corpus) Popularity(action string) int {
	id, ok := c.lib.vocab.Actions.Lookup(action)
	if !ok {
		return 0
	}
	return c.in.ActionCount(core.ActionID(id))
}

// KNNRecommender returns a user-based nearest-neighbour collaborative
// filter with Tanimoto neighbourhoods of the given size (≤ 0 selects the
// default of 20) — the paper's "CF KNN".
func (c *Corpus) KNNRecommender(neighbors int) Recommender {
	return &namedRecommender{rec: baseline.NewKNN(c.in, neighbors), lib: c.lib}
}

// MFConfig sizes the matrix-factorization baseline; zero values select
// defaults (16 factors, 10 iterations, λ = 0.05, α = 40).
type MFConfig struct {
	Factors    int
	Iterations int
	Lambda     float64
	Alpha      float64
	Seed       uint64
}

// MFRecommender trains and returns the ALS-WR matrix-factorization
// collaborative filter — the paper's "CF MF".
func (c *Corpus) MFRecommender(cfg MFConfig) (Recommender, error) {
	als, err := baseline.FitALS(c.in, baseline.ALSConfig{
		Factors:    cfg.Factors,
		Iterations: cfg.Iterations,
		Lambda:     cfg.Lambda,
		Alpha:      cfg.Alpha,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("goalrec: training matrix factorization: %w", err)
	}
	return &namedRecommender{rec: als, lib: c.lib}, nil
}

// PopularityRecommender returns the most-popular-first baseline.
func (c *Corpus) PopularityRecommender() Recommender {
	return &namedRecommender{rec: baseline.NewPopularity(c.in), lib: c.lib}
}

// AssocRulesRecommender returns the pairwise association-rule baseline with
// the given absolute minimum support (≤ 0 selects the default of 2).
func (c *Corpus) AssocRulesRecommender(minSupport int) Recommender {
	return &namedRecommender{rec: baseline.NewAssocRules(c.in, minSupport), lib: c.lib}
}

// BPRConfig sizes the Bayesian Personalized Ranking baseline; zero values
// select defaults (16 factors, 20 epochs, lr 0.05, λ 0.01).
type BPRConfig struct {
	Factors      int
	Epochs       int
	LearningRate float64
	Lambda       float64
	Seed         uint64
}

// BPRRecommender trains and returns a Bayesian Personalized Ranking model —
// pairwise-ranking matrix factorization, the other classical implicit-MF
// formulation next to ALS-WR.
func (c *Corpus) BPRRecommender(cfg BPRConfig) Recommender {
	bpr := baseline.FitBPR(c.in, baseline.BPRConfig{
		Factors:      cfg.Factors,
		Epochs:       cfg.Epochs,
		LearningRate: cfg.LearningRate,
		Lambda:       cfg.Lambda,
		Seed:         cfg.Seed,
	})
	return &namedRecommender{rec: bpr, lib: c.lib}
}

// ItemKNNRecommender returns item-based collaborative filtering: candidates
// score by their co-consumption similarity (Tanimoto over user sets) to the
// query activity's actions, using per-item neighbourhoods of the given size
// (≤ 0 selects the default of 20).
func (c *Corpus) ItemKNNRecommender(neighbors int) Recommender {
	return &namedRecommender{rec: baseline.NewItemKNN(c.in, neighbors), lib: c.lib}
}

// buildFeatures converts a name-keyed feature map into the id-level feature
// table the content and hybrid recommenders share.
func (l *Library) buildFeatures(features map[string][]string) *baseline.Features {
	featIDs := core.NewInterner(16)
	perAction := make([][]baseline.FeatureID, l.lib.NumActions())
	for name, feats := range features {
		id, ok := l.vocab.Actions.Lookup(name)
		if !ok {
			continue
		}
		row := make([]baseline.FeatureID, len(feats))
		for i, f := range feats {
			row[i] = featIDs.Intern(f)
		}
		perAction[id] = row
	}
	return baseline.NewFeatures(perAction, featIDs.Len())
}

// ContentRecommender returns the content-based baseline over action
// features: features maps an action name to its feature labels (for the
// paper's grocery scenario, the product's category). Actions absent from the
// map have no features and are never recommended by this method.
func (l *Library) ContentRecommender(features map[string][]string) Recommender {
	return &namedRecommender{rec: baseline.NewContent(l.buildFeatures(features)), lib: l}
}

// HybridRecommender blends a goal-based strategy with content similarity —
// the paper's future-work direction (Section 7). alpha ∈ [0, 1] weights the
// goal-based score; 1−alpha weights the cosine similarity of a candidate's
// features to the activity's feature profile. The candidate pool is always
// the goal-based one, so the result stays goal-aware at every alpha.
func (l *Library) HybridRecommender(s Strategy, features map[string][]string, alpha float64, opts ...RecommenderOption) (Recommender, error) {
	inner, err := l.Recommender(s, opts...)
	if err != nil {
		return nil, err
	}
	goalRec := inner.(*namedRecommender).rec
	rec := hybrid.New(goalRec, l.buildFeatures(features), alpha)
	return &namedRecommender{rec: rec, lib: l}, nil
}
