package goalrec_test

// End-to-end pipeline test over the public API only: extract libraries from
// text, merge with a hand-built one, deduplicate, infer goals, recommend
// with every strategy (cached and uncached), compare against every baseline,
// and round-trip the whole thing through both persistence formats.

import (
	"bytes"
	"reflect"
	"testing"

	"goalrec"
)

func TestPublicPipelineEndToEnd(t *testing.T) {
	// 1. A curated library plus one extracted from stories.
	curated := goalrec.NewBuilder()
	for goal, actions := range map[string][]string{
		"get fit":    {"join gym", "start jog", "stretch daily"},
		"save money": {"set budget", "cancel subscription", "cook home"},
	} {
		if err := curated.AddImplementation(goal, actions...); err != nil {
			t.Fatal(err)
		}
	}
	extracted, kept := goalrec.BuildFromStories([]goalrec.Story{
		{Goal: "get fit", Text: "I joined a gym. I stretched daily."},
		{Goal: "get fit", Text: "I joined a gym. I stretched daily."}, // duplicate story
		{Goal: "run a marathon", Text: "I joined a running club. I trained on weekends."},
	}, goalrec.ExtractOptions{Synonyms: map[string]string{"jogging": "jog"}})
	if kept != 3 {
		t.Fatalf("kept = %d", kept)
	}

	// 2. Merge and deduplicate.
	merged := goalrec.MergeLibraries(curated.Build(), extracted)
	lib, stats := merged.Deduplicate(1)
	if stats.ExactDuplicates != 1 {
		t.Fatalf("dedupe stats = %+v", stats)
	}

	// 3. Goal inference on a mixed activity.
	activity := []string{"join gym", "set budget"}
	goals := lib.TopGoals(activity, -1)
	if len(goals) < 2 {
		t.Fatalf("TopGoals = %v", goals)
	}

	// 4. Every strategy produces consistent cached/uncached output.
	for _, s := range goalrec.Strategies() {
		plain := lib.MustRecommender(s)
		cached := lib.MustRecommender(s, goalrec.WithCache(16))
		a := plain.Recommend(activity, 5)
		b := cached.Recommend(activity, 5)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: cached output diverged", s)
		}
		if len(a) == 0 {
			t.Errorf("%s produced nothing", s)
		}
		// Explanations exist for the top recommendation.
		if exp := lib.Explain(activity, a[0].Action); len(exp) == 0 {
			t.Errorf("%s: top recommendation %q has no explanation", s, a[0].Action)
		}
	}

	// 5. Baselines operate over the same vocabulary.
	corpus := lib.NewCorpus([][]string{
		{"join gym", "start jog"},
		{"set budget", "cook home"},
		{"join gym", "stretch daily", "cook home"},
	})
	baselines := []goalrec.Recommender{
		corpus.KNNRecommender(0),
		corpus.PopularityRecommender(),
		corpus.AssocRulesRecommender(1),
		corpus.ItemKNNRecommender(0),
		corpus.BPRRecommender(goalrec.BPRConfig{Factors: 4, Epochs: 3, Seed: 1}),
	}
	mf, err := corpus.MFRecommender(goalrec.MFConfig{Factors: 4, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	baselines = append(baselines, mf)
	for _, rec := range baselines {
		for _, r := range rec.Recommend(activity, 5) {
			if r.Action == "join gym" || r.Action == "set budget" {
				t.Errorf("%s recommended a performed action", rec.Name())
			}
		}
	}

	// 6. Round-trip through both persistence formats preserves behaviour.
	ref := lib.MustRecommender(goalrec.Breadth).Recommend(activity, 5)
	var jsonBuf, binBuf bytes.Buffer
	if err := lib.SaveJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := lib.SaveBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := goalrec.LoadLibraryJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := goalrec.LoadLibraryBinary(&binBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, reloaded := range []*goalrec.Library{fromJSON, fromBin} {
		got := reloaded.MustRecommender(goalrec.Breadth).Recommend(activity, 5)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("persistence round trip changed recommendations")
		}
	}
}
