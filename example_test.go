package goalrec_test

import (
	"fmt"

	"goalrec"
)

func buildExampleLibrary() *goalrec.Library {
	b := goalrec.NewBuilder()
	// Errors are impossible for these literals; a real caller checks them.
	_ = b.AddImplementation("olivier salad", "potatoes", "carrots", "pickles")
	_ = b.AddImplementation("mashed potatoes", "potatoes", "nutmeg", "butter")
	_ = b.AddImplementation("pan-fried carrots", "carrots", "nutmeg")
	return b.Build()
}

func Example() {
	lib := buildExampleLibrary()
	rec, _ := lib.Recommender(goalrec.Breadth)
	for _, r := range rec.Recommend([]string{"potatoes", "carrots"}, 3) {
		fmt.Printf("%s %.0f\n", r.Action, r.Score)
	}
	// Output:
	// pickles 2
	// nutmeg 2
	// butter 1
}

func ExampleLibrary_GoalSpace() {
	lib := buildExampleLibrary()
	fmt.Println(lib.GoalSpace([]string{"nutmeg"}))
	// Output:
	// [mashed potatoes pan-fried carrots]
}

func ExampleLibrary_TopGoals() {
	lib := buildExampleLibrary()
	for _, g := range lib.TopGoals([]string{"potatoes", "carrots"}, 2) {
		fmt.Printf("%s %.2f (support %d)\n", g.Goal, g.Progress, g.Support)
	}
	// Output:
	// olivier salad 0.67 (support 2)
	// pan-fried carrots 0.50 (support 1)
}

func ExampleLibrary_Recommender_focus() {
	lib := buildExampleLibrary()
	rec, _ := lib.Recommender(goalrec.FocusCompleteness)
	for _, r := range rec.Recommend([]string{"potatoes", "carrots"}, 2) {
		fmt.Println(r.Action)
	}
	// Output:
	// pickles
	// nutmeg
}

func ExampleLibrary_Explain() {
	lib := buildExampleLibrary()
	for _, e := range lib.Explain([]string{"potatoes", "carrots"}, "pickles") {
		fmt.Printf("%s: %.2f -> %.2f\n", e.Goal, e.ProgressBefore, e.ProgressAfter)
	}
	// Output:
	// olivier salad: 0.67 -> 1.00
}

func ExampleCorpus_KNNRecommender() {
	lib := buildExampleLibrary()
	corpus := lib.NewCorpus([][]string{
		{"potatoes", "carrots", "pickles"},
		{"potatoes", "carrots", "nutmeg"},
		{"butter", "nutmeg"},
	})
	rec := corpus.KNNRecommender(2)
	for _, r := range rec.Recommend([]string{"potatoes", "carrots"}, 2) {
		fmt.Println(r.Action)
	}
	// Output:
	// pickles
	// nutmeg
}

func ExampleBuildFromStories() {
	lib, kept := goalrec.BuildFromStories([]goalrec.Story{
		{Goal: "get fit", Text: "I joined a gym. I started jogging."},
	}, goalrec.ExtractOptions{})
	fmt.Println(kept, lib.NumActions())
	// Output:
	// 1 2
}
