package goalrec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"goalrec/internal/wal"
)

// allStrategies is every goal-based strategy, the set the user-store oracle
// checks bit-identity over.
var allStrategies = []Strategy{FocusCompleteness, FocusCloseness, Breadth, BestMatch}

// userOracle computes the from-scratch ranking the materialized view must
// reproduce: the same history POSTed as a plain activity against the same
// engine snapshot.
func userOracle(t *testing.T, e *Engine, s Strategy, history []string, k int) []Recommendation {
	t.Helper()
	rec, err := e.Recommender(s)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Recommend(history, k)
}

// checkUserOracle asserts every strategy's materialized-view ranking equals
// the from-scratch oracle for the user's history.
func checkUserOracle(t *testing.T, e *Engine, us *UserStore, id string) {
	t.Helper()
	history, err := us.History(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allStrategies {
		res, err := us.Recommend(context.Background(), id, s, 10)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		want := userOracle(t, e, s, history, 10)
		if !reflect.DeepEqual(res.Recommendations, want) {
			t.Fatalf("%s: materialized ranking diverged for %q (h=%v):\ngot  %v\nwant %v",
				s, id, history, res.Recommendations, want)
		}
	}
}

// TestUserStoreOracle drives the full view lifecycle — cold build, hits,
// incremental appends, same-lineage advances after ingests, rebuild after a
// swap — and pins bit-identity against from-scratch scoring at every step.
func TestUserStoreOracle(t *testing.T) {
	e := NewEngine()
	storeIngest(t, e, 0, 50)
	us := NewUserStore(e, UserStoreOptions{})

	if _, err := us.Append("u1", []string{"act-1", "act-7"}); err != nil {
		t.Fatal(err)
	}
	checkUserOracle(t, e, us, "u1") // cold build
	checkUserOracle(t, e, us, "u1") // hit

	// Incremental append onto the live view, with a duplicate and an
	// unresolvable name.
	added, err := us.Append("u1", []string{"act-7", "act-13", "unseen-action"})
	if err != nil || added != 2 {
		t.Fatalf("append = %d, %v", added, err)
	}
	checkUserOracle(t, e, us, "u1")
	res, err := us.Recommend(context.Background(), "u1", Breadth, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.UnknownActions, []string{"unseen-action"}) {
		t.Fatalf("unknown = %v", res.UnknownActions)
	}

	// Same-lineage ingest: the view advances along the appended posting rows.
	storeIngest(t, e, 50, 30)
	checkUserOracle(t, e, us, "u1")

	// Swap: new lineage, ids reshuffle, the view must rebuild.
	b := NewBuilder()
	for i := 0; i < 40; i++ {
		if err := b.AddImplementation(fmt.Sprintf("goal-%d", i%9),
			fmt.Sprintf("act-%d", (i*3)%20), fmt.Sprintf("act-%d", (i*11)%20)); err != nil {
			t.Fatal(err)
		}
	}
	e.Swap(b.Build())
	checkUserOracle(t, e, us, "u1")

	st := us.Stats()
	if st.Cold != 1 || st.Rebuilds != 1 || st.Advances != 1 || st.Hits < 1 {
		t.Fatalf("lifecycle counters = %+v", st)
	}

	// Delete forgets the user.
	if err := us.Delete("u1"); err != nil {
		t.Fatal(err)
	}
	if _, err := us.Recommend(context.Background(), "u1", Breadth, 10); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("recommend after delete: %v", err)
	}
	if err := us.Delete("u1"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("second delete: %v", err)
	}
}

// TestUserStoreWALRecovery interleaves ingest batches, user appends, and a
// user delete, restarts the store, and asserts user histories and every
// strategy's rankings come back bit-identical.
func TestUserStoreWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, us := s.Engine(), s.Users()

	storeIngest(t, e, 0, 20)
	mustAppend := func(id string, names ...string) {
		t.Helper()
		if _, err := us.Append(id, names); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend("alice", "act-1", "act-7")
	storeIngest(t, e, 20, 15)
	mustAppend("bob", "act-2")
	mustAppend("alice", "act-13", "act-1") // one dup, one new
	mustAppend("carol", "act-3", "act-5")
	if err := us.Delete("bob"); err != nil {
		t.Fatal(err)
	}
	mustAppend("bob", "act-9") // recreated after delete: only the new history
	storeIngest(t, e, 35, 10)

	type userState struct {
		history  []string
		rankings map[Strategy][]Recommendation
	}
	capture := func(e *Engine, us *UserStore) map[string]userState {
		out := make(map[string]userState)
		for _, id := range []string{"alice", "bob", "carol"} {
			h, err := us.History(id)
			if err != nil {
				t.Fatalf("history %q: %v", id, err)
			}
			rk := make(map[Strategy][]Recommendation)
			for _, strat := range allStrategies {
				res, err := us.Recommend(context.Background(), id, strat, 10)
				if err != nil {
					t.Fatalf("recommend %q/%s: %v", id, strat, err)
				}
				rk[strat] = res.Recommendations
			}
			out[id] = userState{history: h, rankings: rk}
		}
		return out
	}
	want := capture(e, us)
	if want["bob"].history[0] != "act-9" || len(want["bob"].history) != 1 {
		t.Fatalf("bob's recreated history = %v", want["bob"].history)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Users().Len(); n != 3 {
		t.Fatalf("users after restart = %d", n)
	}
	if got := capture(s2.Engine(), s2.Users()); !reflect.DeepEqual(got, want) {
		t.Fatalf("user state changed across restart:\ngot  %+v\nwant %+v", got, want)
	}
	// Each recovered user also still matches the from-scratch oracle.
	for _, id := range []string{"alice", "bob", "carol"} {
		checkUserOracle(t, s2.Engine(), s2.Users(), id)
	}
	// The recovered store keeps journaling: append, restart again, verify.
	if _, err := s2.Users().Append("alice", []string{"act-11"}); err != nil {
		t.Fatal(err)
	}
	wantAlice, _ := s2.Users().History("alice")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got, _ := s3.Users().History("alice"); !reflect.DeepEqual(got, wantAlice) {
		t.Fatalf("post-restart append lost: %v vs %v", got, wantAlice)
	}
}

// TestUserStoreCompactionCarriesUsers compacts a store whose WAL holds user
// records and asserts they survive: the snapshot covers only the library, so
// compaction must carry every user record into the fresh log.
func TestUserStoreCompactionCarriesUsers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 0, 30)
	if _, err := s.Users().Append("u", []string{"act-1", "act-7"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Users().Delete("gone"); !errors.Is(err, ErrUnknownUser) {
		t.Fatal("delete of unknown user must not journal")
	}
	if _, err := s.Users().Append("v", []string{"act-2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction appends land after the carried records.
	if _, err := s.Users().Append("u", []string{"act-13"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.Users().History("u"); !reflect.DeepEqual(got, []string{"act-1", "act-7", "act-13"}) {
		t.Fatalf("u's history after compaction+restart = %v", got)
	}
	if got, _ := s2.Users().History("v"); !reflect.DeepEqual(got, []string{"act-2"}) {
		t.Fatalf("v's history after compaction+restart = %v", got)
	}
	checkUserOracle(t, s2.Engine(), s2.Users(), "u")
}

// TestUserStoreWALTruncationEveryOffset interleaves ingest batches with user
// appends and deletes, then truncates the WAL at EVERY byte offset and
// reopens: each cut must recover exactly the state of the complete-record
// prefix — library epoch consistent with its batches, user histories equal
// to replaying the surviving user records in order.
func TestUserStoreWALTruncationEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 0, 3)
	mustAppend := func(id string, names ...string) {
		t.Helper()
		if _, err := s.Users().Append(id, names); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend("a", "act-1", "act-7")
	storeIngest(t, s.Engine(), 3, 2)
	mustAppend("b", "act-2")
	mustAppend("a", "act-13")
	if err := s.Users().Delete("b"); err != nil {
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 5, 2)
	mustAppend("b", "act-5")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	full, err := os.ReadFile(filepath.Join(dir, "ingest.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		cutWAL := filepath.Join(cutDir, "ingest.wal")
		if err := os.WriteFile(cutWAL, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		// Expected state: replay the truncated file's intact records directly.
		wantEpoch := uint64(0)
		wantImpls := 0
		wantUsers := make(map[string][]string)
		if _, err := wal.Replay(cutWAL, func(payload []byte) error {
			switch payload[0] {
			case walKindBatch:
				epoch, impls, err := decodeBatch(payload)
				if err != nil {
					return err
				}
				wantEpoch = epoch
				wantImpls += len(impls)
			case walKindUserAppend:
				id, names, err := decodeUserAppend(payload)
				if err != nil {
					return err
				}
				wantUsers[id] = append(wantUsers[id], names...)
			case walKindUserDelete:
				id, err := decodeUserDelete(payload)
				if err != nil {
					return err
				}
				delete(wantUsers, id)
			}
			return nil
		}); err != nil {
			t.Fatalf("cut %d: manual replay: %v", cut, err)
		}

		cs, err := OpenStore(cutDir, StoreOptions{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if got := cs.Engine().Epoch(); got != wantEpoch {
			t.Fatalf("cut %d: epoch = %d, want %d", cut, got, wantEpoch)
		}
		if got := cs.Engine().Len(); got != wantImpls {
			t.Fatalf("cut %d: impls = %d, want %d", cut, got, wantImpls)
		}
		if got := cs.Users().Len(); got != len(wantUsers) {
			t.Fatalf("cut %d: users = %d, want %d", cut, got, len(wantUsers))
		}
		for id, names := range wantUsers {
			got, err := cs.Users().History(id)
			if err != nil {
				t.Fatalf("cut %d: history %q: %v", cut, id, err)
			}
			if !reflect.DeepEqual(got, names) {
				t.Fatalf("cut %d: history %q = %v, want %v", cut, id, got, names)
			}
		}
		cs.Close()
	}
}

// TestUserRecommendDuringSwap races queries and appends against repeated
// Swaps. Every returned ranking must equal the from-scratch oracle of ONE of
// the two libraries — a mix (stale counters scored against new postings)
// matches neither. Run under -race this also pins the locking protocol.
func TestUserRecommendDuringSwap(t *testing.T) {
	build := func(shift int) *Library {
		b := NewBuilder()
		for i := 0; i < 30; i++ {
			if err := b.AddImplementation(fmt.Sprintf("goal-%d", (i+shift)%7),
				fmt.Sprintf("act-%d", (i*3+shift)%12), fmt.Sprintf("act-%d", (i*5)%12),
				fmt.Sprintf("act-%d", (i*7+2*shift)%12)); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	libA, libB := build(0), build(1)
	e := NewEngineFromLibrary(libA)
	us := NewUserStore(e, UserStoreOptions{})

	history := []string{"act-1", "act-3", "act-5"}
	if _, err := us.Append("u", history); err != nil {
		t.Fatal(err)
	}
	// Oracles per library, computed on isolated engines so the racing engine's
	// recommender sets stay untouched.
	type oracle map[Strategy][]Recommendation
	oracleFor := func(lib *Library) oracle {
		o := make(oracle)
		oe := NewEngineFromLibrary(lib)
		for _, s := range allStrategies {
			o[s] = userOracle(t, oe, s, history, 10)
		}
		return o
	}
	oa, ob := oracleFor(libA), oracleFor(libB)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				e.Swap(libB)
			} else {
				e.Swap(libA)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s := allStrategies[(w+i)%len(allStrategies)]
				res, err := us.Recommend(context.Background(), "u", s, 10)
				if err != nil {
					t.Errorf("recommend: %v", err)
					return
				}
				if !reflect.DeepEqual(res.Recommendations, oa[s]) && !reflect.DeepEqual(res.Recommendations, ob[s]) {
					t.Errorf("%s: ranking matches neither library's oracle: %v", s, res.Recommendations)
					return
				}
			}
		}(w)
	}
	close(stop)
	wg.Wait()
}
