package goalrec

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestEngineEmpty(t *testing.T) {
	e := NewEngine()
	if got := e.Epoch(); got != 0 {
		t.Fatalf("Epoch() = %d, want 0", got)
	}
	if got := e.Len(); got != 0 {
		t.Fatalf("Len() = %d, want 0", got)
	}
	rec, err := e.Recommender(Breadth)
	if err != nil {
		t.Fatalf("Recommender: %v", err)
	}
	if got := rec.Recommend([]string{"milk"}, 3); len(got) != 0 {
		t.Fatalf("empty engine recommended %v", got)
	}
}

func TestEngineIngestAndSnapshot(t *testing.T) {
	e := NewEngine()
	if err := e.AddImplementation("pancakes", "milk", "eggs", "flour"); err != nil {
		t.Fatalf("AddImplementation: %v", err)
	}
	if got := e.Epoch(); got != 1 {
		t.Fatalf("Epoch() after first add = %d, want 1", got)
	}
	old := e.Snapshot()

	added, err := e.AddImplementations([]Implementation{
		{Goal: "omelette", Actions: []string{"eggs", "butter"}},
		{Goal: "pancakes", Actions: []string{"milk", "eggs", "butter"}},
	})
	if err != nil || added != 2 {
		t.Fatalf("AddImplementations = (%d, %v), want (2, nil)", added, err)
	}
	if got := e.Epoch(); got != 2 {
		t.Fatalf("Epoch() after batch = %d, want 2", got)
	}
	if got := e.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}

	// The old snapshot is frozen at its epoch.
	if got := old.NumImplementations(); got != 1 {
		t.Fatalf("old snapshot grew to %d implementations", got)
	}
	if got := old.GoalSpace([]string{"butter"}); len(got) != 0 {
		t.Fatalf("old snapshot sees later data: %v", got)
	}
	if got := old.UnknownActions([]string{"milk", "butter"}); !reflect.DeepEqual(got, []string{"butter"}) {
		t.Fatalf("old snapshot UnknownActions = %v, want [butter]", got)
	}

	// The current snapshot serves the new data.
	cur := e.Snapshot()
	if got := cur.GoalSpace([]string{"butter"}); !reflect.DeepEqual(got, []string{"omelette", "pancakes"}) {
		t.Fatalf("GoalSpace(butter) = %v", got)
	}
	if got := cur.UnknownActions([]string{"milk", "butter"}); got != nil {
		t.Fatalf("current snapshot UnknownActions = %v, want nil", got)
	}
}

func TestEngineBatchStopsAtFirstError(t *testing.T) {
	e := NewEngine()
	added, err := e.AddImplementations([]Implementation{
		{Goal: "breakfast", Actions: []string{"toast"}},
		{Goal: "", Actions: []string{"jam"}},
		{Goal: "lunch", Actions: []string{"soup"}},
	})
	if err == nil {
		t.Fatal("want error for empty goal")
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	// The valid prefix is published.
	if got := e.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
	if got := e.Epoch(); got != 1 {
		t.Fatalf("Epoch() = %d, want 1", got)
	}
	if got := e.Snapshot().GoalSpace([]string{"toast"}); !reflect.DeepEqual(got, []string{"breakfast"}) {
		t.Fatalf("GoalSpace(toast) = %v", got)
	}
}

func TestEngineFromLibraryAndSwap(t *testing.T) {
	b := NewBuilder()
	if err := b.AddImplementation("pasta", "noodles", "sauce"); err != nil {
		t.Fatal(err)
	}
	e := NewEngineFromLibrary(b.Build())
	if got := e.Epoch(); got != 1 {
		t.Fatalf("Epoch() after seed = %d, want 1", got)
	}
	if got := e.Snapshot().GoalSpace([]string{"sauce"}); !reflect.DeepEqual(got, []string{"pasta"}) {
		t.Fatalf("seeded GoalSpace(sauce) = %v", got)
	}
	// Appending on top of the seed works.
	if err := e.AddImplementation("pasta", "noodles", "cheese"); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot().GoalSpace([]string{"cheese"}); !reflect.DeepEqual(got, []string{"pasta"}) {
		t.Fatalf("appended GoalSpace(cheese) = %v", got)
	}

	old := e.Snapshot()
	b2 := NewBuilder()
	if err := b2.AddImplementation("salad", "lettuce"); err != nil {
		t.Fatal(err)
	}
	swapped := e.Swap(b2.Build())
	if got := swapped.Epoch(); got != e.Epoch() || got <= old.Epoch() {
		t.Fatalf("swap epoch = %d (engine %d, old %d)", got, e.Epoch(), old.Epoch())
	}
	if got := e.Snapshot().GoalSpace([]string{"lettuce"}); !reflect.DeepEqual(got, []string{"salad"}) {
		t.Fatalf("swapped GoalSpace(lettuce) = %v", got)
	}
	// The pre-swap snapshot still answers from its own vocabulary and data.
	if got := old.GoalSpace([]string{"sauce"}); !reflect.DeepEqual(got, []string{"pasta"}) {
		t.Fatalf("old GoalSpace(sauce) after swap = %v", got)
	}
	// And post-swap appends extend the new lineage.
	if err := e.AddImplementation("salad", "lettuce", "tomato"); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot().GoalSpace([]string{"tomato"}); !reflect.DeepEqual(got, []string{"salad"}) {
		t.Fatalf("post-swap GoalSpace(tomato) = %v", got)
	}
}

func TestEngineRecommenderPerEpoch(t *testing.T) {
	e := NewEngine()
	if err := e.AddImplementation("pancakes", "milk", "eggs", "flour"); err != nil {
		t.Fatal(err)
	}
	r1, err := e.Recommender(Breadth)
	if err != nil {
		t.Fatal(err)
	}
	r1again, err := e.Recommender(Breadth)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r1again {
		t.Fatal("same epoch, no options: want the shared recommender instance")
	}

	if err := e.AddImplementation("omelette", "eggs", "butter"); err != nil {
		t.Fatal(err)
	}
	r2, err := e.Recommender(Breadth)
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r1 {
		t.Fatal("new epoch: want a fresh recommender, got the cached one")
	}
	// The old recommender keeps answering from its epoch.
	for _, rec := range r1.Recommend([]string{"eggs"}, 10) {
		if rec.Action == "butter" {
			t.Fatal("epoch-1 recommender surfaced epoch-2 data")
		}
	}
	found := false
	for _, rec := range r2.Recommend([]string{"eggs"}, 10) {
		found = found || rec.Action == "butter"
	}
	if !found {
		t.Fatal("epoch-2 recommender missing epoch-2 data")
	}

	// Identical resolved options share one per-epoch instance (including
	// its cache); differing options get their own.
	opt1, err := e.Recommender(Breadth, WithCache(8))
	if err != nil {
		t.Fatal(err)
	}
	opt2, err := e.Recommender(Breadth, WithCache(8))
	if err != nil {
		t.Fatal(err)
	}
	if opt1 != opt2 {
		t.Fatal("identical options should share one per-epoch recommender")
	}
	opt3, err := e.Recommender(Breadth, WithBreadthWeighting("count"))
	if err != nil {
		t.Fatal(err)
	}
	if opt3 == opt1 {
		t.Fatal("differing options should not share an instance")
	}
	if _, err := e.Recommender(Strategy("nope")); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

// TestLiveRecommenderFollowsEpochs is the epoch-invalidation regression
// test for the cached path: a WithCache recommender obtained from
// LiveRecommender must surface an ingested implementation on the very next
// call — never a ranking cached against a superseded epoch.
func TestLiveRecommenderFollowsEpochs(t *testing.T) {
	e := NewEngine()
	if err := e.AddImplementation("pancakes", "milk", "eggs", "flour"); err != nil {
		t.Fatal(err)
	}
	live, err := e.LiveRecommender(Breadth, WithCache(8))
	if err != nil {
		t.Fatal(err)
	}
	activity := []string{"eggs"}
	// Two queries: the second is served from the epoch's cache.
	live.Recommend(activity, 10)
	for _, rec := range live.Recommend(activity, 10) {
		if rec.Action == "butter" {
			t.Fatal("butter recommended before it was ingested")
		}
	}

	if err := e.AddImplementation("omelette", "eggs", "butter"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range live.Recommend(activity, 10) {
		found = found || rec.Action == "butter"
	}
	if !found {
		t.Fatal("cached live recommender kept serving the previous epoch's ranking")
	}

	// A batch resolves one epoch for all items and sees the ingest too.
	results := live.RecommendBatch(context.Background(), [][]string{activity, {"milk"}}, 10)
	if len(results) != 2 {
		t.Fatalf("batch results = %d, want 2", len(results))
	}
	found = false
	for _, rec := range results[0].Recommendations {
		found = found || rec.Action == "butter"
	}
	if !found {
		t.Fatal("live batch missing the ingested implementation")
	}

	// Invalid configurations fail at construction, not at query time.
	if _, err := e.LiveRecommender(Breadth, WithBreadthWeighting("nope")); err == nil {
		t.Fatal("want error for invalid weighting")
	}
	if _, err := e.LiveRecommender(Strategy("bogus")); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

// TestEngineConcurrentIngestAndQuery hammers one engine with a writer and
// many readers; under -race it proves snapshot publication is safe.
func TestEngineConcurrentIngestAndQuery(t *testing.T) {
	e := NewEngine()
	const writes = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			goal := fmt.Sprintf("goal%d", i%17)
			if err := e.AddImplementation(goal,
				fmt.Sprintf("act%d", i%31), fmt.Sprintf("act%d", (i+7)%31)); err != nil {
				t.Errorf("AddImplementation: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := e.Snapshot()
			heldN := held.NumImplementations()
			for i := 0; i < 100; i++ {
				lib := e.Snapshot()
				rec, err := e.Recommender(BestMatch)
				if err != nil {
					t.Errorf("Recommender: %v", err)
					return
				}
				rec.Recommend([]string{"act3", "act10"}, 5)
				lib.GoalSpace([]string{"act3"})
				lib.TopGoals([]string{"act3", "act10"}, 3)
				if got := held.NumImplementations(); got != heldN {
					t.Errorf("held snapshot changed size: %d -> %d", heldN, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := e.Len(); got != writes {
		t.Fatalf("Len() = %d, want %d", got, writes)
	}
}
