package goalrec

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func storeIngest(t *testing.T, e *Engine, start, n int) {
	t.Helper()
	impls := make([]Implementation, n)
	for i := range impls {
		id := start + i
		impls[i] = Implementation{
			Goal: fmt.Sprintf("goal-%d", id%17),
			Actions: []string{
				fmt.Sprintf("act-%d", id%29),
				fmt.Sprintf("act-%d", (id*7)%29),
				fmt.Sprintf("act-%d", (id*13)%41),
			},
		}
	}
	if added, err := e.AddImplementations(impls); err != nil || added != n {
		t.Fatalf("AddImplementations: added %d, err %v", added, err)
	}
}

func storeRankings(t *testing.T, e *Engine) map[Strategy][]Recommendation {
	t.Helper()
	activity := []string{"act-1", "act-7", "act-13"}
	out := make(map[Strategy][]Recommendation)
	for _, s := range []Strategy{FocusCompleteness, FocusCloseness, Breadth, BestMatch} {
		rec, err := e.Recommender(s)
		if err != nil {
			t.Fatalf("Recommender(%s): %v", s, err)
		}
		out[s] = rec.Recommend(activity, 10)
	}
	return out
}

// A store over an empty directory must recover purely from the WAL: ingest,
// close, reopen, and the epoch and every strategy's rankings survive.
func TestStoreRestartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := s.Engine()
	if e.Len() != 0 {
		t.Fatalf("fresh store has %d implementations", e.Len())
	}
	storeIngest(t, e, 0, 40)
	storeIngest(t, e, 40, 25)
	storeIngest(t, e, 65, 5)
	wantEpoch, wantLen := e.Epoch(), e.Len()
	want := storeRankings(t, e)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e2 := s2.Engine()
	if e2.Epoch() != wantEpoch {
		t.Fatalf("epoch after restart = %d, want %d", e2.Epoch(), wantEpoch)
	}
	if e2.Len() != wantLen {
		t.Fatalf("len after restart = %d, want %d", e2.Len(), wantLen)
	}
	if got := storeRankings(t, e2); !reflect.DeepEqual(got, want) {
		t.Fatal("rankings changed across restart")
	}
	// The recovered engine must keep ingesting and journaling.
	storeIngest(t, e2, 70, 3)
	if e2.Epoch() != wantEpoch+1 {
		t.Fatalf("epoch after post-restart ingest = %d, want %d", e2.Epoch(), wantEpoch+1)
	}
}

// Compaction folds the WAL into a snapshot; recovery then starts from the
// mapped snapshot and replays only the batches ingested after it.
func TestStoreCompaction(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(dir, StoreOptions{CompressPostings: compress})
			if err != nil {
				t.Fatal(err)
			}
			e := s.Engine()
			storeIngest(t, e, 0, 60)
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			snaps, err := snapshotEpochs(nil, dir)
			if err != nil || len(snaps) != 1 || snaps[0] != e.Epoch() {
				t.Fatalf("snapshots after compaction: %v (err %v), want [%d]", snaps, err, e.Epoch())
			}
			if fi, err := os.Stat(filepath.Join(dir, "ingest.wal")); err != nil || fi.Size() != 8 {
				t.Fatalf("WAL not reset after compaction: size %v, err %v", fi, err)
			}
			// Post-compaction batches land in the fresh WAL and replay on top.
			storeIngest(t, e, 60, 15)
			wantEpoch := e.Epoch()
			want := storeRankings(t, e)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := OpenStore(dir, StoreOptions{CompressPostings: compress})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Engine().Epoch() != wantEpoch {
				t.Fatalf("epoch = %d, want %d", s2.Engine().Epoch(), wantEpoch)
			}
			if got := storeRankings(t, s2.Engine()); !reflect.DeepEqual(got, want) {
				t.Fatal("rankings changed across compaction + restart")
			}
		})
	}
}

// A torn final record loses only the unacknowledged batch; the store reopens
// on the intact prefix and keeps appending.
func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 0, 30)
	midEpoch, midLen := s.Engine().Epoch(), s.Engine().Len()
	storeIngest(t, s.Engine(), 30, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "ingest.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Engine().Epoch() != midEpoch || s2.Engine().Len() != midLen {
		t.Fatalf("after torn tail: epoch %d len %d, want %d/%d",
			s2.Engine().Epoch(), s2.Engine().Len(), midEpoch, midLen)
	}
	storeIngest(t, s2.Engine(), 40, 5)
	if s2.Engine().Epoch() != midEpoch+1 {
		t.Fatalf("epoch after reappend = %d", s2.Engine().Epoch())
	}
}

// Engine.Swap supersedes the log, so the store snapshots the swapped library
// immediately and recovery adopts it.
func TestStoreSwapPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	storeIngest(t, s.Engine(), 0, 10)

	b := NewBuilder()
	for i := 0; i < 20; i++ {
		if err := b.AddImplementation(fmt.Sprintf("sw-goal-%d", i%5),
			fmt.Sprintf("sw-act-%d", i%7), fmt.Sprintf("sw-act-%d", (i+3)%7)); err != nil {
			t.Fatal(err)
		}
	}
	s.Engine().Swap(b.Build())
	if err := s.Err(); err != nil {
		t.Fatalf("swap persist failed: %v", err)
	}
	wantEpoch, wantLen := s.Engine().Epoch(), s.Engine().Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Engine().Epoch() != wantEpoch || s2.Engine().Len() != wantLen {
		t.Fatalf("swap lost: epoch %d len %d, want %d/%d",
			s2.Engine().Epoch(), s2.Engine().Len(), wantEpoch, wantLen)
	}
	if got := s2.Engine().Snapshot().Goals(); len(got) != 5 {
		t.Fatalf("swapped goal space not recovered: %v", got)
	}
}

// A journal append failure must reject the ingest (nothing acknowledged that
// is not logged), leave the published library untouched, and latch the store.
func TestStoreJournalFailureIsStickyAndAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.Engine()
	storeIngest(t, e, 0, 10)
	epoch, n := e.Epoch(), e.Len()

	// Yank the log out from under the writer.
	s.mu.Lock()
	s.w.Close()
	s.mu.Unlock()

	_, err = e.AddImplementations([]Implementation{{Goal: "g", Actions: []string{"a"}}})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("ingest after WAL failure: %v, want ErrJournal", err)
	}
	if e.Epoch() != epoch || e.Len() != n {
		t.Fatal("failed ingest mutated the published library")
	}
	if s.Err() == nil {
		t.Fatal("store did not latch the failure")
	}
	if _, err := e.AddImplementations([]Implementation{{Goal: "g", Actions: []string{"a"}}}); !errors.Is(err, ErrJournal) {
		t.Fatalf("second ingest: %v, want sticky ErrJournal", err)
	}
}

// Background compaction keeps at most KeepSnapshots generations.
func TestStorePrunesOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		storeIngest(t, s.Engine(), i*10, 10)
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := snapshotEpochs(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots (%v), want 2", len(snaps), snaps)
	}
	if snaps[len(snaps)-1] != s.Engine().Epoch() {
		t.Fatalf("newest snapshot %d != engine epoch %d", snaps[len(snaps)-1], s.Engine().Epoch())
	}
}

// The WAL-size trigger fires background compaction without any explicit call.
func TestStoreAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{CompactAtWALBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		storeIngest(t, s.Engine(), i*10, 10)
	}
	if err := s.Close(); err != nil { // Close waits for no one; compaction may or may not have landed
		t.Fatal(err)
	}
	snaps, err := snapshotEpochs(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot written by background compaction")
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Engine().Len() != 200 {
		t.Fatalf("recovered %d implementations, want 200", s2.Engine().Len())
	}
}
